"""Live status endpoint: the metrics registry over HTTP, mid-run.

A stdlib-only :class:`ThreadingHTTPServer` on a daemon thread, polling
the process-wide :data:`~repro.obs.metrics.METRICS` registry and
:data:`~repro.obs.trace.TRACER` run metadata while a run is in flight —
the first brick of ``repro serve`` (parallelization-as-a-service,
ROADMAP).  Enabled via ``--status-port`` on ``run``/``trace``/``perf``
or the ``REPRO_STATUS_PORT`` environment variable.

Endpoints
---------
* ``/health`` — liveness: ``{"status": "ok", "uptime_s": ...}``.
* ``/metrics`` — JSON snapshot of the registry plus run metadata
  (validated by ``python -m repro.obs.schema --metrics``).
* ``/metrics.prom`` — the same snapshot in Prometheus text exposition
  format, ``worker.N.*`` registry entries folded into a ``worker="N"``
  label (validated by ``python -m repro.obs.schema --prom``).

The handler reads the registry under the GIL without locking: metric
updates are single attribute writes, so a snapshot taken concurrently
with a run is internally consistent per metric, which is all a poll
needs.  Consumers: ``python -m repro top`` (terminal dashboard) and any
Prometheus scraper.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional

from .log import get_logger
from .metrics import METRICS, MetricsRegistry, render_prometheus
from .trace import TRACER, Tracer

log = get_logger("obs.server")

#: Environment variable supplying a default ``--status-port``.
STATUS_PORT_ENV = "REPRO_STATUS_PORT"

#: Version stamp in the ``/metrics`` JSON payload.
STATUS_FORMAT = 1

#: Bind address: loopback only — the endpoint is an observability
#: surface, not a public API.
DEFAULT_HOST = "127.0.0.1"


def resolve_status_port(port: Optional[int] = None) -> Optional[int]:
    """Resolve the status-server port: explicit flag > ``REPRO_STATUS_PORT``
    environment variable > disabled (None).  Port 0 asks the kernel for
    an ephemeral port (see :attr:`StatusServer.port` for the result)."""
    if port is not None:
        return port
    raw = os.environ.get(STATUS_PORT_ENV, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{STATUS_PORT_ENV}={raw!r} is not an integer port")
    if not 0 <= value <= 65535:
        raise ValueError(f"{STATUS_PORT_ENV}={value} is outside [0, 65535]")
    return value


class StatusServer:
    """The in-process status endpoint; :meth:`start` / :meth:`stop`.

    Serves whatever registry/tracer it is constructed with (defaults to
    the process-wide singletons), so tests can run it against a private
    registry without touching global state.
    """

    def __init__(self, port: int = 0, host: str = DEFAULT_HOST,
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None):
        self.registry = registry if registry is not None else METRICS
        self.tracer = tracer if tracer is not None else TRACER
        self._requested = (host, port)
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started_at = 0.0

    # -- payloads ----------------------------------------------------------

    def metrics_payload(self) -> Dict[str, object]:
        """The ``/metrics`` JSON body (also the `top` poll format)."""
        tracer = self.tracer
        return {
            "status_format": STATUS_FORMAT,
            "generated_unix": time.time(),
            "uptime_s": (round(time.time() - self._started_at, 3)
                         if self._started_at else 0.0),
            "epoch_unix": tracer.epoch_unix,
            "run": dict(tracer.run_metadata),
            "metrics": self.registry.snapshot(),
        }

    def health_payload(self) -> Dict[str, object]:
        return {
            "status": "ok",
            "uptime_s": (round(time.time() - self._started_at, 3)
                         if self._started_at else 0.0),
            "tracing": self.tracer.enabled,
            "metrics": len(self.registry),
        }

    def prometheus_text(self) -> str:
        return render_prometheus(self.registry.snapshot())

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> Optional[int]:
        """The bound port (the resolved one, if 0 was requested)."""
        return self._httpd.server_address[1] if self._httpd else None

    @property
    def url(self) -> Optional[str]:
        if self._httpd is None:
            return None
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "StatusServer":
        """Bind and serve on a daemon thread; idempotent."""
        if self._httpd is not None:
            return self
        server = self

        class Handler(BaseHTTPRequestHandler):
            def _reply(self, status: int, body: bytes,
                       content_type: str) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                path = self.path.split("?", 1)[0]
                try:
                    if path == "/health":
                        body = json.dumps(server.health_payload(),
                                          sort_keys=True).encode()
                        self._reply(200, body, "application/json")
                    elif path == "/metrics":
                        body = json.dumps(server.metrics_payload(),
                                          sort_keys=True,
                                          default=str).encode()
                        self._reply(200, body, "application/json")
                    elif path == "/metrics.prom":
                        body = server.prometheus_text().encode()
                        self._reply(200, body,
                                    "text/plain; version=0.0.4")
                    else:
                        body = json.dumps(
                            {"error": f"unknown path {path!r}",
                             "endpoints": ["/health", "/metrics",
                                           "/metrics.prom"]}).encode()
                        self._reply(404, body, "application/json")
                except (BrokenPipeError, ConnectionResetError):
                    pass  # client went away mid-reply; nothing to do

            def log_message(self, fmt: str, *args: object) -> None:
                log.debug("status: " + fmt, *args)

        self._httpd = ThreadingHTTPServer(self._requested, Handler)
        self._httpd.daemon_threads = True
        self._started_at = time.time()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-status",
            daemon=True)
        self._thread.start()
        log.info("status endpoint serving on %s", self.url)
        return self

    def stop(self) -> None:
        """Shut down the server and join the thread; idempotent."""
        httpd, thread = self._httpd, self._thread
        self._httpd = self._thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "StatusServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def start_status_server(port: Optional[int] = None,
                        host: str = DEFAULT_HOST) -> Optional[StatusServer]:
    """Start the process-wide status endpoint if a port is configured
    (explicit argument or ``REPRO_STATUS_PORT``); returns the running
    server, or None when no port is configured."""
    resolved = resolve_status_port(port)
    if resolved is None:
        return None
    return StatusServer(port=resolved, host=host).start()
