#!/usr/bin/env python
"""Reduction privatization: expanding an accumulator across workers.

A histogram + sum-of-squares loop carries *real* flow dependences through
its accumulators — privatization alone cannot help, and non-speculative
DOALL rejects the loop outright.  Privateer recognizes the updates as
associative/commutative reductions, gives each worker an
identity-initialized copy of the reduction heap, and merges the partial
results at each checkpoint (§3.2).

Run:  python examples/reduction_privatization.py
"""

from repro.baselines import analyze_loops, select_compatible
from repro.bench.pipeline import prepare
from repro.frontend import compile_minic

SOURCE = """
int data[256];
long hist[16];
double sumsq;

int main(int n) {
    rand_seed(99);
    for (int i = 0; i < 256; i++) { data[i] = (int)(rand_int() % 1000); }
    for (int i = 0; i < n; i++) {
        int v = data[i % 256];
        hist[v % 16] += 1;
        sumsq += (double)v * (double)v;
        /* some per-iteration work so the loop is worth parallelizing */
        int acc = 0;
        for (int j = 0; j < 40; j++) { acc = acc * 5 + v + j; }
        hist[acc & 15] += 1;
    }
    for (int b = 0; b < 16; b++) { printf("bucket %d: %ld\\n", b, hist[b]); }
    printf("sum of squares %.1f\\n", sumsq);
    return 0;
}
"""


def main() -> None:
    # The non-speculative baseline rejects the loop: the accumulators are
    # loop-carried flow dependences.
    module = compile_minic(SOURCE, "hist")
    candidates = analyze_loops(module, args=(192,))
    hot = candidates[0]
    print(f"DOALL-only verdict for {hot.ref}: "
          f"{'legal' if hot.legal else 'REJECTED'}")
    for reason in hot.reasons[:4]:
        print(f"   - {reason}")

    print("\nPrivateer pipeline:")
    program = prepare(SOURCE, "hist", args=(192,))
    print(program.assignment.describe())

    for site, rplan in program.plan.redux_objects.items():
        print(f"  merge recipe: {site}: operator {rplan.operator}, "
              f"{rplan.element_size}-byte elements")

    result = program.execute(workers=8)
    assert result.output == program.sequential.output
    print(f"\n8 workers: speedup {program.speedup(result):.2f}x, "
          f"reduction updates tracked: {result.runtime_stats.redux_updates}")
    print("merged histogram and sum are byte-identical to sequential")


if __name__ == "__main__":
    main()
