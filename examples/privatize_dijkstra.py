#!/usr/bin/env python
"""Figure 2 and Figure 4: the dijkstra transformation, before and after.

Shows the IR of ``enqueueQ``/``dequeueQ`` before and after speculative
privatization — the ``h_alloc``/``h_dealloc`` replacement, the inserted
``check_heap``/``private_read``/``private_write`` calls, and the value-
prediction checks at the loop latch (the paper's lines 78–80) — plus the
heap assignment of Figure 4.

Run:  python examples/privatize_dijkstra.py
"""

from repro.frontend import compile_minic
from repro.ir import format_function
from repro.workloads import DIJKSTRA


def main() -> None:
    # The untransformed IR ("Figure 2a").
    before = compile_minic(DIJKSTRA.source, "dijkstra")
    print("=" * 72)
    print("BEFORE: sequential dijkstra (excerpt: enqueueQ, dequeueQ)")
    print("=" * 72)
    print(format_function(before.function_named("enqueueQ")))
    print()
    print(format_function(before.function_named("dequeueQ")))

    # Profile, classify, transform ("Figure 2b").
    program = DIJKSTRA.prepare_small()

    print()
    print("=" * 72)
    print("HEAP ASSIGNMENT (Figure 4)")
    print("=" * 72)
    print(program.assignment.describe())

    print()
    print("=" * 72)
    print("AFTER: speculatively privatized (changes annotated '; privateer')")
    print("=" * 72)
    print(format_function(program.module.function_named("enqueueQ")))
    print()
    print(format_function(program.module.function_named("dequeueQ")))

    print()
    print("=" * 72)
    print("LATCH: value-prediction checks (fig. 2b lines 79-80)")
    print("=" * 72)
    from repro.ir.printer import format_block

    print(format_block(program.plan.loop.latches[0]))

    print()
    print(program.plan.describe())


if __name__ == "__main__":
    main()
