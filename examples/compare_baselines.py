#!/usr/bin/env python
"""The paper's comparison story on one program (dijkstra):

* naive dependence speculation misspeculates on ~every iteration (§2);
* the LRPD test cannot even express the memory layout (Table 1);
* non-speculative DOALL finds nothing to parallelize (Figure 7);
* Privateer privatizes the queue and path table and scales (Figure 6).

Run:  python examples/compare_baselines.py
"""

from repro.baselines import (
    estimate_dependence_speculation,
    judge_hot_loop,
    run_doall_only,
)
from repro.workloads import DIJKSTRA

WORKERS = 16


def main() -> None:
    w = DIJKSTRA
    print(f"program: {w.name} ({w.suite}) — {w.description}\n")

    print("1. naive dependence speculation (§2)")
    est = estimate_dependence_speculation(w.source, w.name, args=w.train)
    print(f"   cross-iteration dependences manifest on "
          f"{est.misspec_rate:.0%} of iterations")
    print(f"   projected speedup at {WORKERS} workers: "
          f"{est.projected_speedup(WORKERS):.2f}x\n")

    print("2. LRPD-style array privatization (Table 1)")
    verdict = judge_hot_loop(w.source, w.name, args=w.train)
    print(f"   applicable: {verdict.applicable}")
    for reason in verdict.reasons[:3]:
        print(f"   - {reason}")
    print()

    print("3. non-speculative DOALL (Figure 7 baseline)")
    program = w.prepare_small()
    base = run_doall_only(w.source, w.name, args=w.train, workers=WORKERS)
    print(f"   loops proven parallel: {len(base.selected)}")
    print(f"   whole-program speedup: "
          f"{base.speedup_over(program.sequential.cycles):.2f}x\n")

    print("4. Privateer (this paper)")
    result = program.execute(workers=WORKERS)
    assert result.output == program.sequential.output
    print(f"   heaps: {program.assignment.counts()}")
    print(f"   extra speculation: {', '.join(program.assignment.extras())}")
    print(f"   whole-program speedup: {program.speedup(result):.2f}x at "
          f"{WORKERS} workers, misspeculations: "
          f"{result.runtime_stats.misspec_count()}")


if __name__ == "__main__":
    main()
