#!/usr/bin/env python
"""Quickstart: speculatively privatize and parallelize a C program.

The program below reuses a scratch buffer and a linked-list stack across
loop iterations — false dependences that defeat non-speculative
parallelization.  Privateer profiles it, classifies every memory object
into a logical heap, inserts validation, and runs it under the simulated
multicore DOALL executor.

Run:  python examples/quickstart.py
"""

from repro.bench.pipeline import prepare

SOURCE = """
struct item { int v; struct item* next; };
struct item* stack;
int scratch[32];
int out[128];
long checksum;

void push(int v) {
    struct item* c = (struct item*)malloc(sizeof(struct item));
    c->v = v;
    c->next = stack;
    stack = c;
}

int pop() {
    struct item* c = stack;
    int v = c->v;
    stack = c->next;
    free(c);
    return v;
}

int main(int n) {
    for (int i = 0; i < n; i++) {
        /* reuse the scratch buffer ... */
        for (int j = 0; j < 32; j++) { scratch[j] = (i + j) * (i + j); }
        /* ... and the linked-list stack, every iteration */
        for (int j = 0; j < 8; j++) { push(scratch[j]); }
        int acc = 0;
        while (stack != 0) { acc += pop(); }
        out[i] = acc;
        checksum += acc;
        printf("iteration %d -> %d\\n", i, acc);
    }
    printf("checksum %ld\\n", checksum);
    return 0;
}
"""


def main() -> None:
    print("compiling, profiling, classifying, transforming ...")
    program = prepare(SOURCE, "quickstart", args=(64,))

    print()
    print(program.assignment.describe())
    print()
    print(program.plan.describe())
    print()

    print(f"best sequential: {program.sequential.cycles:,} simulated cycles")
    for workers in (4, 8, 16, 24):
        result = program.execute(workers=workers)
        assert result.output == program.sequential.output, "output mismatch!"
        speedup = program.speedup(result)
        stats = result.runtime_stats
        print(f"  {workers:2d} workers: speedup {speedup:5.2f}x   "
              f"checkpoints {stats.checkpoints}, "
              f"misspeculations {stats.misspec_count()}, "
              f"deferred I/O {stats.io_deferred}")
    print()
    print("outputs are byte-identical to sequential execution")


if __name__ == "__main__":
    main()
