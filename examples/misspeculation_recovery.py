#!/usr/bin/env python
"""Figure 5: the worker timeline with a misspeculation and recovery.

Injects an artificial misspeculation (as in the paper's §6.3 experiment)
and renders the execution timeline: iterations per worker, the checkpoint
that commits the first epoch, the squash, the sequential recovery, and
the resumed parallel execution — with byte-identical final output.

Run:  python examples/misspeculation_recovery.py
"""

from repro.workloads import ENC_MD5


def main() -> None:
    print("preparing enc-md5 ...")
    program = ENC_MD5.prepare_small()

    print("\n--- clean run (3 workers) " + "-" * 40)
    clean = program.execute(workers=3, record_timeline=True,
                            checkpoint_period=4)
    print(clean.timeline.render())
    print(f"speedup {program.speedup(clean):.2f}x, "
          f"checkpoints {clean.runtime_stats.checkpoints}")

    print("\n--- with an injected misspeculation every 7 iterations " + "-" * 10)
    faulty = program.execute(workers=3, record_timeline=True,
                             checkpoint_period=4, misspec_period=7)
    print(faulty.timeline.render())
    stats = faulty.runtime_stats
    print(f"speedup {program.speedup(faulty):.2f}x, "
          f"misspeculations {stats.misspec_count()}, "
          f"recoveries {stats.recoveries}")
    for event in stats.misspeculations[:3]:
        print(f"  misspec[{event.kind}] at iteration {event.iteration}")

    assert clean.output == program.sequential.output
    assert faulty.output == program.sequential.output
    print("\nboth runs produced byte-identical output "
          "(recovery re-executed the squashed iterations sequentially)")


if __name__ == "__main__":
    main()
