"""Figure 7: the enabling effect of Privateer at 24 workers.

Paper result: non-speculative DOALL achieves 0.93x geomean (slowdown on
alvinn, nothing parallelized on dijkstra/swaptions/enc-md5, a small win
on blackscholes' inner loop), while Privateer achieves 11.4x.  We assert:
Privateer beats DOALL-only on every program, DOALL-only stays near-or-
below 1x everywhere, and its geomean is ~1 or below.
"""

import pytest

from repro.baselines import run_doall_only
from repro.bench.figures import geomean, render_figure7
from repro.workloads import ALL_WORKLOADS, BY_NAME

_BASE = {}


def _doall(runner, workload, workers=24):
    if workload.name not in _BASE:
        prog = runner.program(workload)
        result = run_doall_only(workload.source, workload.name,
                                args=prog.ref_args, workers=workers)
        _BASE[workload.name] = result.speedup_over(prog.sequential.cycles), result
    return _BASE[workload.name]


@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
def test_privateer_beats_doall_only(benchmark, runner, workload):
    def baseline():
        return _doall(runner, workload)

    base_speedup, base_result = benchmark.pedantic(baseline, rounds=1,
                                                   iterations=1)
    priv = runner.speedup(workload, 24)
    assert priv > base_speedup, (
        f"{workload.name}: privateer {priv:.2f} vs doall {base_speedup:.2f}")
    # The baseline never beats ~1.6x anywhere (it only ever finds small
    # inner loops); Privateer's win comes from the hotter outer loop.
    assert base_speedup < priv / 2


def test_nothing_parallelizable_without_privatization(benchmark, runner):
    """On dijkstra and swaptions, static analysis proves no worthwhile
    loop at all; on enc-md5 at most cold setup loops outside the hot
    region (paper: 'DOALL-only does not parallelize any loops in dijkstra
    or enc-md5 because of real, frequent false dependences')."""

    def check():
        return {
            name: _doall(runner, BY_NAME[name])[1].selected
            for name in ("dijkstra", "swaptions", "enc_md5")
        }

    selected = benchmark.pedantic(check, rounds=1, iterations=1)
    for name in ("dijkstra", "swaptions"):
        assert not selected[name], (
            f"{name}: DOALL-only unexpectedly proved {selected[name]}")
    # enc-md5's hot loop is never parallelizable; only the one-shot
    # K-table setup may be selected.
    assert all("md5_tables" in str(ref) for ref in selected["enc_md5"])


def test_figure7_geomeans(benchmark, runner):
    def collect():
        rows = {}
        for w in ALL_WORKLOADS:
            rows[w.name] = {
                "privateer": runner.speedup(w, 24),
                "doall_only": _doall(runner, w)[0],
            }
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    gm_priv = geomean(r["privateer"] for r in rows.values())
    gm_base = geomean(r["doall_only"] for r in rows.values())
    rows["geomean"] = {"privateer": gm_priv, "doall_only": gm_base}
    print()
    print("Figure 7 — enabling effect at 24 workers "
          "(paper: DOALL-only 0.93x vs Privateer 11.4x)")
    print(render_figure7(rows))

    assert gm_base <= 1.2, f"DOALL-only geomean too high: {gm_base:.2f}"
    assert gm_priv / max(gm_base, 1e-9) > 6.0
