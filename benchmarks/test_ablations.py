"""Ablations of the design choices DESIGN.md calls out.

* Checkpoint period: the paper's one-byte timestamps bound k at 253 and
  trade validation latency against recovery cost; we sweep k.
* Value prediction: without it, dijkstra's queue is unrestricted and the
  loop cannot be selected at all.
* Control speculation: profiled-path-only classification is what keeps
  cold error paths from polluting the footprints.
"""

import pytest

from repro.classify import classify
from repro.frontend import compile_minic
from repro.profiling import profile_execution_time, profile_loop
from repro.transform import PrivateerTransform, SelectionError
from repro.workloads import BY_NAME


class TestCheckpointPeriodAblation:
    def test_more_checkpoints_cost_more(self, benchmark, runner):
        w = BY_NAME["dijkstra"]

        def sweep():
            out = {}
            for k in (4, 12, 48):
                result = runner.result(w, 24, checkpoint_period=k)
                out[k] = (result.runtime_stats.checkpoints,
                          result.runtime_stats.checkpoint_cycles,
                          result.output == runner.program(w).sequential.output)
            return out

        data = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print()
        print("checkpoint-period ablation (dijkstra, 24 workers):")
        for k, (count, cycles, ok) in sorted(data.items()):
            print(f"  k={k:3d}: {count:3d} checkpoints, "
                  f"{cycles:9,d} checkpoint cycles, correct={ok}")
        assert all(ok for _c, _cy, ok in data.values())
        assert data[4][0] > data[48][0]
        assert data[4][1] > data[48][1]

    def test_small_period_hurts_misspec_free_speedup(self, benchmark, runner):
        w = BY_NAME["dijkstra"]

        def speeds():
            return (runner.speedup(w, 24, checkpoint_period=4),
                    runner.speedup(w, 24, checkpoint_period=48))

        tight, loose = benchmark.pedantic(speeds, rounds=1, iterations=1)
        assert loose > tight

    def test_small_period_reduces_recovery_waste(self, benchmark, runner):
        """Smaller epochs discard less work on misspeculation — the
        trade-off §3.2 describes."""
        w = BY_NAME["enc_md5"]

        def recovered():
            out = {}
            for k in (4, 48):
                result = runner.result(w, 24, checkpoint_period=k,
                                       misspec_period=31)
                out[k] = sum(i.recovered_iterations
                             for i in result.invocations)
            return out

        data = benchmark.pedantic(recovered, rounds=1, iterations=1)
        assert data[4] <= data[48]


class TestValuePredictionAblation:
    def test_dijkstra_unparallelizable_without_value_prediction(self, benchmark):
        w = BY_NAME["dijkstra"]
        mod = compile_minic(w.source, "dj_ablate")
        report = profile_execution_time(mod, args=w.train)
        ref = report.hottest(top_level_only=False)[0].ref
        profile = profile_loop(mod, ref, args=w.train)
        profile.value_predictions.clear()  # ablate
        assignment = classify(profile)

        def attempt():
            try:
                PrivateerTransform(mod, ref, profile, assignment).run()
                return None
            except SelectionError as e:
                return e

        error = benchmark.pedantic(attempt, rounds=1, iterations=1)
        assert error is not None
        assert any("unrestricted" in r for r in error.reasons)
        assert "global:Q" in assignment.unrestricted_sites


class TestControlSpeculationAblation:
    def test_cold_paths_guarded_by_misspec(self, benchmark, runner):
        """dijkstra's queue-underflow path never ran during profiling, so
        the transformation guards it with a misspec() call."""
        w = BY_NAME["dijkstra"]

        def count():
            return runner.program(w).plan.checks.control_misspec

        guards = benchmark.pedantic(count, rounds=1, iterations=1)
        assert guards >= 1
