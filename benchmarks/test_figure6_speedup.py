"""Figure 6: whole-program speedup over best sequential execution.

Paper result: every program scales with worker count; the geomean at 24
workers is 11.4x.  We assert the *shape*: all five programs beat
sequential at 24 workers, speedups grow from 4 to 24 workers, and the
geomean lands in the same ballpark (>= 7x).
"""

import pytest

from repro.bench.figures import WORKER_COUNTS, geomean, render_figure6
from repro.workloads import ALL_WORKLOADS

_SWEEP = (4, 8, 16, 24)


@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
def test_program_speedup_scales(benchmark, runner, workload):
    prog = runner.program(workload)

    def run_at_24():
        return prog.execute(workers=24)

    result = benchmark.pedantic(run_at_24, rounds=1, iterations=1)
    assert result.output == prog.sequential.output

    speedups = {w: runner.speedup(workload, w) for w in _SWEEP}
    assert speedups[24] > 1.0, f"{workload.name} fails to beat sequential"
    assert speedups[24] > speedups[4], f"{workload.name} does not scale"
    # No misspeculation on the evaluated programs (paper §6.3).
    assert runner.result(workload, 24).runtime_stats.misspec_count() == 0


def test_figure6_geomean(benchmark, runner):
    data = {}
    for w in ALL_WORKLOADS:
        data[w.name] = {n: runner.speedup(w, n) for n in _SWEEP}
    data["geomean"] = {
        n: geomean(data[w.name][n] for w in ALL_WORKLOADS) for n in _SWEEP
    }

    def summarize():
        return data["geomean"][24]

    gm24 = benchmark.pedantic(summarize, rounds=1, iterations=1)
    print()
    print("Figure 6 — whole-program speedup vs workers "
          "(paper: geomean 11.4x at 24)")
    print(render_figure6(data))

    assert gm24 >= 7.0, f"geomean at 24 workers too low: {gm24:.2f}"
    assert data["geomean"][24] > data["geomean"][8] > data["geomean"][4]
