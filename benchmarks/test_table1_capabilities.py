"""Table 1: comparison of Privateer with prior privatization/reduction
schemes, regenerated as a capability matrix over feature probes.

Paper claims reproduced: array-based schemes (PD/LRPD/R-LRPD, Hybrid
Analysis, array expansion/ASSA/DSA) handle array loops and reductions but
cannot express pointer/dynamic-allocation layouts; non-privatizing DOALL
handles none of them; Privateer handles all three probes.
"""

import pytest

from repro.bench.figures import render_table1, table1_data

_ROWS = {}


def _rows(benchmark):
    if "rows" not in _ROWS:
        _ROWS["rows"] = benchmark.pedantic(table1_data, rounds=1, iterations=1)
    else:
        benchmark.pedantic(lambda: _ROWS["rows"], rounds=1, iterations=1)
    return _ROWS["rows"]


def _matrix(rows):
    return {(r["technique"], r["probe"]): r["handles"] for r in rows}


def test_privateer_handles_all_probes(benchmark):
    m = _matrix(_rows(benchmark))
    assert m[("privateer", "array")]
    assert m[("privateer", "linked-list")]
    assert m[("privateer", "reduction")]


def test_lrpd_limited_to_array_layouts(benchmark):
    m = _matrix(_rows(benchmark))
    assert m[("lrpd", "array")]
    assert m[("lrpd", "reduction")]
    assert not m[("lrpd", "linked-list")]


def test_doall_only_handles_nothing(benchmark):
    m = _matrix(_rows(benchmark))
    assert not any(
        m[("doall_only", probe)]
        for probe in ("array", "linked-list", "reduction")
    )


def test_render_table1(benchmark):
    rows = _rows(benchmark)
    print()
    print("Table 1 — capability matrix (feature probes)")
    print(render_table1(rows))
