"""Shared state for the benchmark harness.

Preparing a workload (profile -> classify -> transform) and executing it
at a given worker count are both expensive; the session-scoped runner
memoizes them so every figure/table draws from the same runs — exactly
like measuring once and plotting several views.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.bench.figures import ProgramCache  # noqa: E402
from repro.workloads import ALL_WORKLOADS, BY_NAME  # noqa: E402


class SharedRunner:
    def __init__(self) -> None:
        self.cache = ProgramCache(use_ref=True)
        self._results = {}

    def program(self, workload):
        return self.cache.get(workload)

    def result(self, workload, workers: int, **kwargs):
        key = (workload.name, workers, tuple(sorted(kwargs.items())))
        if key not in self._results:
            prog = self.program(workload)
            self._results[key] = prog.execute(workers=workers, **kwargs)
        return self._results[key]

    def speedup(self, workload, workers: int, **kwargs) -> float:
        prog = self.program(workload)
        return prog.speedup(self.result(workload, workers, **kwargs))


@pytest.fixture(scope="session")
def runner():
    return SharedRunner()


def workload_ids():
    return [w.name for w in ALL_WORKLOADS]
