"""Figure 8: breakdown of overheads on parallel performance.

Paper result: useful work dominates; privacy validation is the next
largest overhead and stays a roughly constant *fraction* of capacity as
workers grow (so its absolute cost grows with workers); alvinn and
dijkstra lose significant capacity joining workers.
"""

import pytest

from repro.bench.figures import render_figure8
from repro.workloads import ALL_WORKLOADS, BY_NAME

_COUNTS = (4, 8, 12, 16, 20, 24)


def _breakdowns(runner, workload):
    return {
        n: runner.result(workload, n).overhead_breakdown() for n in _COUNTS
    }


@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
def test_breakdown_is_a_partition(benchmark, runner, workload):
    data = benchmark.pedantic(lambda: _breakdowns(runner, workload),
                              rounds=1, iterations=1)
    for workers, bd in data.items():
        total = sum(bd.values())
        assert total == pytest.approx(1.0, abs=0.02), (workload.name, workers)
        assert all(v >= -1e-9 for v in bd.values())


@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
def test_useful_work_dominates_at_low_worker_counts(benchmark, runner, workload):
    bd = benchmark.pedantic(
        lambda: runner.result(workload, 4).overhead_breakdown(),
        rounds=1, iterations=1)
    assert bd["useful"] > 0.5, (workload.name, bd)


def test_privacy_fraction_roughly_constant(benchmark, runner):
    """'Percent of capacity used for privacy validation remained mostly
    constant as the number of workers increased' (§6.2) — i.e. absolute
    validation work grows with workers."""
    workload = BY_NAME["dijkstra"]

    def fractions():
        return [
            runner.result(workload, n).overhead_breakdown()["private_read"]
            for n in (8, 16, 24)
        ]

    fr = benchmark.pedantic(fractions, rounds=1, iterations=1)
    assert fr[0] > 0.01  # dijkstra's privacy validation is visible
    assert max(fr) < 3.5 * min(fr)


def test_spawn_join_grows_with_workers(benchmark, runner):
    workload = BY_NAME["alvinn"]  # many invocations: join-heavy (paper)

    def fractions():
        return {
            n: runner.result(workload, n).overhead_breakdown()["spawn_join"]
            for n in (4, 24)
        }

    fr = benchmark.pedantic(fractions, rounds=1, iterations=1)
    assert fr[24] > fr[4]


def test_render_figure8(benchmark, runner):
    data = benchmark.pedantic(
        lambda: {w.name: _breakdowns(runner, w) for w in ALL_WORKLOADS},
        rounds=1, iterations=1)
    print()
    print("Figure 8 — overhead breakdown (fraction of capacity)")
    print(render_figure8(data))
