"""Figure 9: performance degradation with injected misspeculation.

Paper result: "Four of five programs lose half of their speedup with a
misspeculation rate of 0.1%" — a rate at which roughly one in four
checkpoints fails.  Our iteration counts are ~10^3 smaller, so the same
*checkpoint-failure fraction* occurs at proportionally higher iteration
rates (see MISSPEC_RATES); the asserted shape is the same: monotone
degradation, with speedup at least halved once misspeculation makes a
significant fraction of checkpoints fail, and correctness always intact.
"""

import pytest

from repro.bench.figures import MISSPEC_RATES, geomean, render_figure9
from repro.workloads import ALL_WORKLOADS


def _series(runner, workload):
    out = {}
    for rate in MISSPEC_RATES:
        period = 0 if rate <= 0 else max(2, round(1.0 / rate))
        out[rate] = runner.speedup(workload, 24, misspec_period=period)
    return out


@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
def test_degradation_is_monotone_and_safe(benchmark, runner, workload):
    series = benchmark.pedantic(lambda: _series(runner, workload),
                                rounds=1, iterations=1)
    rates = sorted(series)
    clean = series[0.0]
    worst = series[rates[-1]]
    assert worst < clean, f"{workload.name}: no degradation at all"
    # Allow small non-monotonicity between adjacent rates, but the trend
    # must be downward.
    assert series[rates[-1]] <= series[rates[1]] * 1.1

    # Misspeculating runs still produce correct output.
    period = max(2, round(1.0 / rates[-1]))
    result = runner.result(workload, 24, misspec_period=period)
    prog = runner.program(workload)
    assert result.output == prog.sequential.output
    assert result.runtime_stats.recoveries > 0


def test_half_speedup_at_moderate_rate(benchmark, runner):
    """Most programs lose at least half their speedup once a significant
    fraction of checkpoints fail (the paper's headline for Figure 9)."""

    def halved_count():
        halved = 0
        for w in ALL_WORKLOADS:
            series = _series(runner, w)
            if series[max(MISSPEC_RATES)] <= series[0.0] / 2:
                halved += 1
        return halved

    halved = benchmark.pedantic(halved_count, rounds=1, iterations=1)
    assert halved >= 4, f"only {halved}/5 programs lost half their speedup"


def test_render_figure9(benchmark, runner):
    data = benchmark.pedantic(
        lambda: {w.name: _series(runner, w) for w in ALL_WORKLOADS},
        rounds=1, iterations=1)
    print()
    print("Figure 9 — speedup vs injected misspeculation rate at 24 workers")
    print(render_figure9(data))
