"""Table 3: details of the privatized and parallelized programs.

Shape targets from the paper's row for each program: which logical heaps
are populated, the extra speculation kinds (Value/Control/I/O), whether
the region is invoked many times (alvinn: once per epoch), and whether
private reads or writes dominate (dijkstra reads >> writes; blackscholes
has zero private reads).
"""

import pytest

from repro.bench.figures import render_table3, table3_row
from repro.workloads import ALL_WORKLOADS, BY_NAME


def _row(runner, workload):
    prog = runner.program(workload)
    return table3_row(prog, runner.result(workload, 24))


@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
def test_heap_population_matches_paper(benchmark, runner, workload):
    row = benchmark.pedantic(lambda: _row(runner, workload),
                             rounds=1, iterations=1)
    for heap, populated in workload.expectations.heaps.items():
        count = row[f"{heap}_sites"]
        if populated:
            assert count > 0, f"{workload.name}: {heap} should be populated"
        else:
            assert count == 0, f"{workload.name}: {heap} should be empty"
    assert row["unrestricted_sites"] == 0


@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
def test_extras_match_paper(benchmark, runner, workload):
    row = benchmark.pedantic(lambda: _row(runner, workload),
                             rounds=1, iterations=1)
    extras = set() if row["extras"] == "-" else set(
        e.strip() for e in str(row["extras"]).split(","))
    assert set(workload.expectations.extras) <= extras, (
        f"{workload.name}: expected at least {workload.expectations.extras}, "
        f"got {extras}")


def test_alvinn_row_exact(benchmark, runner):
    row = benchmark.pedantic(lambda: _row(runner, BY_NAME["alvinn"]),
                             rounds=1, iterations=1)
    # Paper: Private 4, Short-Lived 0, Read-Only 4, Redux 3, Unrestricted 0.
    assert row["private_sites"] == 4
    assert row["short_lived_sites"] == 0
    assert row["read_only_sites"] == 4
    assert row["redux_sites"] == 3
    # ...and one invocation per epoch.
    assert row["invocations"] == BY_NAME["alvinn"].ref[1]


def test_read_write_byte_shapes(benchmark, runner):
    def shapes():
        return {
            w.name: _row(runner, w) for w in ALL_WORKLOADS
        }

    rows = benchmark.pedantic(shapes, rounds=1, iterations=1)
    # dijkstra: private reads dominate writes (paper: 84.9 GB vs 56.7 GB).
    dj = rows["dijkstra"]
    assert dj["private_bytes_read"] > dj["private_bytes_written"]
    # blackscholes: zero private reads (paper: 0 B), substantial writes.
    bs = rows["blackscholes"]
    assert bs["private_bytes_read"] == 0
    assert bs["private_bytes_written"] > 0


def test_checkpoints_taken_every_program(benchmark, runner):
    def counts():
        return {w.name: _row(runner, w)["checkpoints"] for w in ALL_WORKLOADS}

    ckpts = benchmark.pedantic(counts, rounds=1, iterations=1)
    for name, n in ckpts.items():
        assert n >= 2, f"{name}: too few checkpoints ({n})"


def test_render_table3(benchmark, runner):
    rows = benchmark.pedantic(
        lambda: [_row(runner, w) for w in ALL_WORKLOADS],
        rounds=1, iterations=1)
    print()
    print("Table 3 — privatized and parallelized program details")
    print(render_table3(rows))
