"""The `python -m repro` command-line interface."""

import pytest

from repro.__main__ import main

SRC = """
int scratch[8];
int out[64];
int main(int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < 8; j++) { scratch[j] = i + j; }
        int acc = 0;
        for (int r = 0; r < 5; r++) {
            for (int j = 0; j < 8; j++) { acc += scratch[j]; }
        }
        out[i] = acc;
    }
    printf("%d\\n", out[2]);
    return 0;
}
"""

BAD_SRC = """
int state;
int out[64];
int main(int n) {
    for (int i = 0; i < n; i++) {
        out[i] = state;
        state = state + i;
        for (int j = 0; j < 20; j++) { out[i] = out[i] * 3 + j; }
    }
    printf("%d\\n", out[0]);
    return 0;
}
"""


@pytest.fixture
def prog_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(SRC)
    return str(path)


class TestAnalyze:
    def test_shows_heap_assignment(self, prog_file, capsys):
        rc = main(["analyze", prog_file, "--args", "24"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Heap assignment" in out
        assert "PRIVATE" in out
        assert "ParallelPlan" in out

    def test_unparallelizable_reports_reasons(self, tmp_path, capsys):
        path = tmp_path / "bad.c"
        path.write_text(BAD_SRC)
        rc = main(["analyze", str(path), "--args", "24"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "no parallelizable loop" in out


class TestRun:
    def test_runs_and_reports(self, prog_file, capsys):
        rc = main(["run", prog_file, "--args", "24", "--workers", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "speedup:" in out
        assert "output matches sequential: True" in out
        assert "misspeculations:  0" in out

    def test_timeline_flag(self, prog_file, capsys):
        rc = main(["run", prog_file, "--args", "24", "--workers", "2",
                   "--timeline"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "worker 0" in out and "legend" in out

    def test_misspec_injection(self, prog_file, capsys):
        rc = main(["run", prog_file, "--args", "24", "--workers", "2",
                   "--misspec-period", "9"])
        out = capsys.readouterr().out
        assert rc == 0  # still correct
        assert "recoveries: 2" in out


class TestBaselines:
    def test_reports_all_baselines(self, prog_file, capsys):
        rc = main(["baselines", prog_file, "--args", "24",
                   "--workers", "8"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "DOALL-only" in out
        assert "LRPD" in out
        assert "dependence speculation" in out


class TestWorkloads:
    def test_lists_five(self, capsys):
        rc = main(["workloads"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("alvinn", "dijkstra", "blackscholes", "swaptions",
                     "enc_md5"):
            assert name in out
