"""The `python -m repro` command-line interface."""

import pytest

from repro.__main__ import main

SRC = """
int scratch[8];
int out[64];
int main(int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < 8; j++) { scratch[j] = i + j; }
        int acc = 0;
        for (int r = 0; r < 5; r++) {
            for (int j = 0; j < 8; j++) { acc += scratch[j]; }
        }
        out[i] = acc;
    }
    printf("%d\\n", out[2]);
    return 0;
}
"""

BAD_SRC = """
int state;
int out[64];
int main(int n) {
    for (int i = 0; i < n; i++) {
        out[i] = state;
        state = state + i;
        for (int j = 0; j < 20; j++) { out[i] = out[i] * 3 + j; }
    }
    printf("%d\\n", out[0]);
    return 0;
}
"""


@pytest.fixture
def prog_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(SRC)
    return str(path)


class TestAnalyze:
    def test_shows_heap_assignment(self, prog_file, capsys):
        rc = main(["analyze", prog_file, "--args", "24"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Heap assignment" in out
        assert "PRIVATE" in out
        assert "ParallelPlan" in out

    def test_unparallelizable_reports_reasons(self, tmp_path, capsys):
        path = tmp_path / "bad.c"
        path.write_text(BAD_SRC)
        rc = main(["analyze", str(path), "--args", "24"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "no parallelizable loop" in out


class TestRun:
    def test_runs_and_reports(self, prog_file, capsys):
        rc = main(["run", prog_file, "--args", "24", "--workers", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "speedup:" in out
        assert "output matches sequential: True" in out
        assert "misspeculations:  0" in out

    def test_timeline_flag(self, prog_file, capsys):
        rc = main(["run", prog_file, "--args", "24", "--workers", "2",
                   "--timeline"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "worker 0" in out and "legend" in out

    def test_misspec_injection(self, prog_file, capsys):
        rc = main(["run", prog_file, "--args", "24", "--workers", "2",
                   "--misspec-period", "9"])
        out = capsys.readouterr().out
        assert rc == 0  # still correct
        assert "recoveries: 2" in out


class TestArgValidation:
    """Bad worker/epoch arguments die in argparse with a clear message,
    before any compilation or execution starts."""

    def _expect_usage_error(self, argv, capsys, fragment):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        assert fragment in capsys.readouterr().err

    def test_run_zero_workers_rejected(self, prog_file, capsys):
        self._expect_usage_error(
            ["run", prog_file, "--args", "24", "--workers", "0"],
            capsys, "at least one worker")

    def test_run_negative_workers_rejected(self, prog_file, capsys):
        self._expect_usage_error(
            ["run", prog_file, "--args", "24", "--workers", "-3"],
            capsys, "must be >= 1 (got -3)")

    def test_run_non_integer_workers_rejected(self, prog_file, capsys):
        self._expect_usage_error(
            ["run", prog_file, "--args", "24", "--workers", "two"],
            capsys, "expected an integer, got 'two'")

    def test_run_epoch_floor_rejected(self, prog_file, capsys):
        self._expect_usage_error(
            ["run", prog_file, "--args", "24", "--checkpoint-period", "1"],
            capsys, "cannot amortize a checkpoint")

    def test_trace_zero_workers_rejected(self, prog_file, capsys):
        self._expect_usage_error(
            ["trace", prog_file, "--args", "24", "--workers", "0"],
            capsys, "at least one worker")

    def test_baselines_zero_workers_rejected(self, prog_file, capsys):
        self._expect_usage_error(
            ["baselines", prog_file, "--args", "24", "--workers", "0"],
            capsys, "at least one worker")

    def test_valid_arguments_still_accepted(self, prog_file, capsys):
        rc = main(["run", prog_file, "--args", "24", "--workers", "1",
                   "--checkpoint-period", "2"])
        assert rc == 0
        assert "speedup:" in capsys.readouterr().out


class TestAdaptFlag:
    def test_run_adapt_prints_summary(self, prog_file, capsys, monkeypatch,
                                      tmp_path):
        from repro.adapt.policy import ADAPT_DIR_ENV

        monkeypatch.setenv(ADAPT_DIR_ENV, str(tmp_path))
        rc = main(["run", prog_file, "--args", "24", "--workers", "2",
                   "--adapt", "--misspec-period", "5",
                   "--misspec-burst", "10"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "adapt:" in out
        assert "epoch " in out and "grows=" in out and "warm=no" in out
        assert "output matches sequential: True" in out

    def test_run_no_adapt_is_silent(self, prog_file, capsys):
        rc = main(["run", prog_file, "--args", "24", "--workers", "2",
                   "--no-adapt"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "adapt:" not in out

    def test_env_var_enables_adapt(self, prog_file, capsys, monkeypatch,
                                   tmp_path):
        from repro.adapt import ADAPT_ENV
        from repro.adapt.policy import ADAPT_DIR_ENV

        monkeypatch.setenv(ADAPT_ENV, "1")
        monkeypatch.setenv(ADAPT_DIR_ENV, str(tmp_path))
        rc = main(["run", prog_file, "--args", "24", "--workers", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "adapt:" in out


class TestPoolBackendCLI:
    """Every pool-backend flag and env var documented in
    docs/BACKENDS.md, driven through the real CLI."""

    def test_run_backend_pool(self, prog_file, capsys):
        rc = main(["run", prog_file, "--args", "24", "--workers", "2",
                   "--backend", "pool"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "output matches sequential: True" in out

    def test_run_pool_workers_flag(self, prog_file, capsys):
        rc = main(["run", prog_file, "--args", "24", "--workers", "4",
                   "--backend", "pool", "--pool-workers", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "output matches sequential: True" in out

    def test_pool_workers_zero_rejected(self, prog_file, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", prog_file, "--args", "24", "--backend", "pool",
                  "--pool-workers", "0"])
        assert exc.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_pool_workers_requires_pool_backend(self, prog_file, capsys):
        rc = main(["run", prog_file, "--args", "24", "--workers", "2",
                   "--pool-workers", "2"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "only applies to the pool backend" in err

    def test_backend_env_selects_pool(self, prog_file, capsys, monkeypatch):
        from repro.parallel.backend import BACKEND_ENV

        monkeypatch.setenv(BACKEND_ENV, "pool")
        rc = main(["run", prog_file, "--args", "24", "--workers", "2",
                   "--pool-workers", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "output matches sequential: True" in out

    def test_malformed_ring_kb_env_exits_2(self, prog_file, capsys,
                                           monkeypatch):
        from repro.parallel.shm_ring import RING_KB_ENV

        monkeypatch.setenv(RING_KB_ENV, "banana")
        rc = main(["run", prog_file, "--args", "24", "--workers", "2",
                   "--backend", "pool"])
        err = capsys.readouterr().err
        assert rc == 2
        assert RING_KB_ENV in err and "banana" in err

    def test_ring_kb_env_honoured(self, prog_file, capsys, monkeypatch):
        from repro.parallel.shm_ring import RING_KB_ENV

        monkeypatch.setenv(RING_KB_ENV, "8")
        rc = main(["run", prog_file, "--args", "24", "--workers", "2",
                   "--backend", "pool"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "output matches sequential: True" in out

    def test_trace_backend_pool_emits_artifacts(self, prog_file, tmp_path,
                                                capsys):
        rc = main(["trace", prog_file, "--args", "24", "--workers", "2",
                   "--backend", "pool", "--out-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "pool backend" in out
        assert (tmp_path / "prog.trace.jsonl").is_file()
        assert (tmp_path / "prog.chrome.json").is_file()


class TestBaselines:
    def test_reports_all_baselines(self, prog_file, capsys):
        rc = main(["baselines", prog_file, "--args", "24",
                   "--workers", "8"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "DOALL-only" in out
        assert "LRPD" in out
        assert "dependence speculation" in out


class TestTrace:
    def test_trace_source_file_emits_artifacts(self, prog_file, tmp_path,
                                               capsys):
        out_dir = tmp_path / "traces"
        rc = main(["trace", prog_file, "--args", "24", "--workers", "2",
                   "--out-dir", str(out_dir)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "speedup" in out
        assert "pipeline.prepare" in out       # span summary table
        assert "runtime.checkpoints" in out    # metrics table
        jsonl = out_dir / "prog.trace.jsonl"
        chrome = out_dir / "prog.chrome.json"
        assert jsonl.is_file() and chrome.is_file()

        from repro.obs import schema
        assert schema.validate_jsonl(str(jsonl))["errors"] == []
        assert schema.validate_chrome(str(chrome))["errors"] == []

    def test_trace_artifacts_cover_phases_and_simulated_lanes(
            self, prog_file, tmp_path, capsys):
        import json

        rc = main(["trace", prog_file, "--args", "24", "--workers", "2",
                   "--misspec-period", "9", "--out-dir", str(tmp_path)])
        capsys.readouterr()
        assert rc == 0
        events = [json.loads(line) for line in
                  (tmp_path / "prog.trace.jsonl").read_text().splitlines()]
        spans = {e["name"] for e in events if e["kind"] == "span"}
        assert {"pipeline.compile", "pipeline.classify", "pipeline.transform",
                "pipeline.prepare", "pipeline.execute"} <= spans
        instants = {e["name"] for e in events if e["kind"] == "instant"}
        assert "runtime.checkpoint" in instants
        assert "runtime.misspec" in instants
        chrome = json.loads((tmp_path / "prog.chrome.json").read_text())
        pids = {e["pid"] for e in chrome["traceEvents"]}
        assert pids == {1, 2}  # wall clock + simulated timeline

    def test_trace_unknown_target_fails(self, capsys):
        rc = main(["trace", "no-such-workload"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "neither a workload" in err

    def test_tracing_disabled_after_command(self, prog_file, tmp_path,
                                            capsys):
        from repro.obs import TRACER

        main(["trace", prog_file, "--args", "24", "--workers", "2",
              "--out-dir", str(tmp_path)])
        capsys.readouterr()
        assert not TRACER.enabled


class TestObsFlags:
    def test_run_trace_flag(self, prog_file, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main(["run", prog_file, "--args", "24", "--workers", "2",
                   "--trace"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "trace:" in out
        assert (tmp_path / "prog.trace.jsonl").is_file()
        assert (tmp_path / "prog.chrome.json").is_file()

    def test_run_trace_out_prefix(self, prog_file, tmp_path, capsys):
        prefix = tmp_path / "deep" / "mytrace"
        rc = main(["run", prog_file, "--args", "24", "--workers", "2",
                   "--trace-out", str(prefix)])
        capsys.readouterr()
        assert rc == 0
        assert (tmp_path / "deep" / "mytrace.trace.jsonl").is_file()

    def test_analyze_metrics_flag(self, prog_file, capsys):
        rc = main(["analyze", prog_file, "--args", "24", "--metrics"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "classify.sites.private" in out


class TestWorkloads:
    def test_lists_five(self, capsys):
        rc = main(["workloads"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("alvinn", "dijkstra", "blackscholes", "swaptions",
                     "enc_md5"):
            assert name in out


class TestStatusEndpoint:
    def test_run_with_status_port_serves_and_stops(self, prog_file, capsys):
        rc = main(["run", prog_file, "--args", "8", "--status-port", "0"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "status: http://127.0.0.1:" in out
        assert "/metrics" in out

    def test_status_port_arms_observability(self, prog_file, capsys,
                                            monkeypatch):
        from repro import obs

        seen = {}
        orig = obs.METRICS.snapshot

        def spy_execute(func):
            def wrapper(*a, **kw):
                result = func(*a, **kw)
                seen["enabled"] = obs.enabled()
                seen["epochs"] = orig().get("executor.epochs")
                return result
            return wrapper

        from repro.bench import pipeline

        monkeypatch.setattr(pipeline.PreparedProgram, "execute",
                            spy_execute(pipeline.PreparedProgram.execute))
        rc = main(["run", prog_file, "--args", "8", "--status-port", "0"])
        assert rc == 0
        assert seen["enabled"] is True
        assert seen["epochs"]["value"] > 0
        assert obs.enabled() is False  # disarmed on the way out

    def test_env_port_honoured(self, prog_file, capsys, monkeypatch):
        from repro.obs.server import STATUS_PORT_ENV

        monkeypatch.setenv(STATUS_PORT_ENV, "0")
        rc = main(["run", prog_file, "--args", "8"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "status: http://127.0.0.1:" in out

    def test_malformed_env_port_exits_2(self, prog_file, capsys,
                                        monkeypatch):
        from repro.obs.server import STATUS_PORT_ENV

        monkeypatch.setenv(STATUS_PORT_ENV, "not-a-port")
        with pytest.raises(SystemExit) as exc:
            main(["run", prog_file, "--args", "8"])
        assert exc.value.code == 2
        assert "not an integer" in capsys.readouterr().err

    def test_consumer_commands_never_serve(self, capsys, monkeypatch):
        from repro.obs.server import STATUS_PORT_ENV

        # With the env var set, `bench-check` must not try to bind the
        # port the observed run already holds.
        monkeypatch.setenv(STATUS_PORT_ENV, "1")  # privileged: bind fails
        rc = main(["bench-check", "--bench", "BENCH_interp.json"])
        assert rc == 0
        assert "status:" not in capsys.readouterr().out
