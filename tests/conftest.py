"""Make sibling test modules importable under pytest's importlib mode
(test_fastpath_differential reuses test_genuine_misspeculation's
programs)."""

import sys
from pathlib import Path

_TESTS_DIR = str(Path(__file__).parent)
if _TESTS_DIR not in sys.path:
    sys.path.insert(0, _TESTS_DIR)
