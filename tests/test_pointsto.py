"""Points-to analysis: precision where expected, conservatism elsewhere."""

import pytest

from repro.analysis import PointsToAnalysis
from repro.frontend import compile_minic
from repro.ir.instructions import Call, Load, Store


def _analysis(src):
    mod = compile_minic(src)
    return mod, PointsToAnalysis(mod)


def _first(mod, fn_name, kind, index=0):
    found = [i for i in mod.function_named(fn_name).instructions()
             if isinstance(i, kind)]
    return found[index]


class TestPrecision:
    def test_global_array_access_is_singleton(self):
        mod, pta = _analysis("""
        int g[8];
        int main() { g[3] = 1; return g[3]; }
        """)
        store = _first(mod, "main", Store)
        s = pta.points_to(store.pointer)
        assert s.is_singleton()
        assert next(iter(s.objects)).name == "g"

    def test_malloc_result_is_site(self):
        mod, pta = _analysis("""
        int main() { int* p = (int*)malloc(8); *p = 1; return *p; }
        """)
        store = _first(mod, "main", Store)
        s = pta.points_to(store.pointer)
        assert s.is_singleton()
        assert next(iter(s.objects)).kind == "heap"

    def test_two_allocas_disjoint(self):
        mod, pta = _analysis("""
        int main() {
            int a[4];
            int b[4];
            a[0] = 1; b[0] = 2;
            return a[0] + b[0];
        }
        """)
        s1 = _first(mod, "main", Store, 0)
        s2 = _first(mod, "main", Store, 1)
        assert not pta.may_alias(s1.pointer, s2.pointer)

    def test_argument_gets_caller_objects(self):
        mod, pta = _analysis("""
        int g[4];
        void set(int* p) { p[0] = 1; }
        int main() { set(g); return g[0]; }
        """)
        store = _first(mod, "set", Store)
        s = pta.points_to(store.pointer)
        assert not s.is_top
        assert {o.name for o in s.objects} == {"g"}

    def test_phi_merges_sources(self):
        mod, pta = _analysis("""
        int a[4];
        int b[4];
        int main(int c) {
            int* p;
            if (c) { p = a; } else { p = b; }
            p[0] = 1;
            return 0;
        }
        """)
        store = _first(mod, "main", Store)
        s = pta.points_to(store.pointer)
        assert {o.name for o in s.objects} == {"a", "b"}


class TestConservatism:
    def test_pointer_loaded_from_struct_is_top(self):
        mod, pta = _analysis("""
        struct n { struct n* next; };
        struct n* head;
        int main() {
            struct n* c = (struct n*)malloc(sizeof(struct n));
            c->next = 0;
            head = c;
            struct n* p = head->next;
            return p == 0;
        }
        """)
        # head->next is a pointer loaded from heap memory: TOP.
        loads = [i for i in mod.function_named("main").instructions()
                 if isinstance(i, Load) and i.type.is_pointer()]
        assert any(pta.points_to(l).is_top for l in loads)

    def test_inttoptr_is_top(self):
        mod, pta = _analysis("""
        int main(long x) { int* p = (int*)x; return p == 0; }
        """)
        fn = mod.function_named("main")
        casts = [i for i in fn.instructions() if i.type.is_pointer()]
        assert any(pta.points_to(c).is_top for c in casts)


class TestSingleStoreGlobals:
    SRC = """
    double* prices;
    void init() { prices = (double*)malloc(64); }
    int main() {
        init();
        double* p = prices;
        p[0] = 1.0;
        return 0;
    }
    """

    def test_load_of_single_store_global_is_precise(self):
        mod, pta = _analysis(self.SRC)
        store = [i for i in mod.function_named("main").instructions()
                 if isinstance(i, Store)][0]
        s = pta.points_to(store.pointer)
        assert not s.is_top
        assert all(o.kind == "heap" for o in s.objects)

    def test_second_store_defeats_the_rule(self):
        src = self.SRC.replace(
            "int main() {",
            "int main() { prices = (double*)malloc(8);")
        mod, pta = _analysis(src)
        store = [i for i in mod.function_named("main").instructions()
                 if isinstance(i, Store) and not i.value.type.is_pointer()]
        s = pta.points_to(store[0].pointer)
        assert s.is_top
