"""Additional MiniC coverage: nested structs, struct arrays, casts,
format specifiers, and trickier lvalue shapes."""

import pytest

from .helpers import run_source


class TestNestedAggregates:
    def test_struct_in_struct(self):
        src = """
        struct inner { int x; int y; };
        struct outer { int tag; struct inner body; };
        int main() {
            struct outer o;
            o.tag = 1;
            o.body.x = 10;
            o.body.y = 20;
            return o.tag + o.body.x + o.body.y;
        }
        """
        assert run_source(src)[0] == 31

    def test_array_of_structs(self):
        src = """
        struct p { int x; int y; };
        struct p pts[4];
        int main() {
            for (int i = 0; i < 4; i++) { pts[i].x = i; pts[i].y = i * i; }
            return pts[3].x + pts[3].y;
        }
        """
        assert run_source(src)[0] == 12

    def test_array_inside_struct(self):
        src = """
        struct buf { int len; int data[8]; };
        int main() {
            struct buf b;
            b.len = 3;
            for (int i = 0; i < b.len; i++) { b.data[i] = i + 5; }
            return b.data[0] + b.data[2];
        }
        """
        assert run_source(src)[0] == 12

    def test_pointer_to_struct_array_walk(self):
        src = """
        struct p { int v; };
        struct p pts[4];
        int main() {
            struct p* it = pts;
            for (int i = 0; i < 4; i++) { it->v = i * 2; it++; }
            return pts[3].v;
        }
        """
        assert run_source(src)[0] == 6


class TestCasts:
    @pytest.mark.parametrize("expr,expect", [
        ("(char)300", 44),          # truncation
        ("(int)(char)200", -56),    # signed char
        ("(unsigned)(0 - 1) > 100", 1),
        ("(long)(int)3000000000", -1294967296),  # i32 wrap then widen
        ("(int)3.99", 3),
        ("(double)7 / 2.0", 3.5),
    ])
    def test_numeric(self, expr, expect):
        ret_ty = "double" if isinstance(expect, float) else "long"
        src = f"{ret_ty} main() {{ return {expr}; }}"
        rv, _, _ = run_source(src)
        if isinstance(expect, float):
            assert rv == pytest.approx(expect)
        else:
            assert rv == expect

    def test_pointer_int_roundtrip(self):
        src = """
        int main() {
            int x = 42;
            long addr = (long)&x;
            int* p = (int*)addr;
            return *p;
        }
        """
        assert run_source(src)[0] == 42

    def test_reinterpret_struct_as_bytes(self):
        """Type casts are exactly what breaks CorD-style object tracking
        (§7) — our model handles them naturally."""
        src = """
        struct pair { int a; int b; };
        int main() {
            struct pair p;
            p.a = 0x01020304;
            p.b = 0;
            char* bytes = (char*)&p;
            return bytes[0];     /* little-endian low byte */
        }
        """
        assert run_source(src)[0] == 4


class TestFormatting:
    def test_scientific(self):
        _, out, _ = run_source(
            'int main() { printf("%e", 1234.5); return 0; }')
        assert "1.234500e+03" == out

    def test_g_format(self):
        _, out, _ = run_source(
            'int main() { printf("%g", 0.5); return 0; }')
        assert out == "0.5"

    def test_percent_literal(self):
        _, out, _ = run_source(
            'int main() { printf("100%%"); return 0; }')
        assert out == "100%"

    def test_pointer_format(self):
        _, out, _ = run_source(
            'int g; int main() { printf("%p", &g); return 0; }')
        assert out.startswith("0x")


class TestLvalueShapes:
    def test_assign_through_double_pointer(self):
        src = """
        int main() {
            int x = 1;
            int* p = &x;
            int** pp = &p;
            **pp = 9;
            return x;
        }
        """
        assert run_source(src)[0] == 9

    def test_conditional_expression_of_doubles(self):
        src = """
        double pick(int c) { return c ? 1.5 : 2.5; }
        int main() { return (int)(pick(1) * 10.0 + pick(0) * 100.0); }
        """
        assert run_source(src)[0] == 265

    def test_compound_assign_all_ops(self):
        src = """
        int main() {
            int x = 100;
            x += 5; x -= 1; x *= 2; x /= 4; x %= 31;
            x <<= 2; x >>= 1; x |= 8; x ^= 3; x &= 63;
            return x;
        }
        """
        # Python-checked: ((((100+5-1)*2)//4)%31)=21 -> 21<<2=84 -> 42
        # 42|8=42 -> wait: compute directly
        x = 100
        x += 5; x -= 1; x *= 2; x //= 4; x %= 31
        x <<= 2; x >>= 1; x |= 8; x ^= 3; x &= 63
        assert run_source(src)[0] == x

    def test_chained_arrow(self):
        src = """
        struct n { int v; struct n* next; };
        int main() {
            struct n a; struct n b; struct n c;
            a.next = &b; b.next = &c;
            c.v = 77;
            return a.next->next->v;
        }
        """
        assert run_source(src)[0] == 77

    def test_string_in_condition(self):
        src = """
        int main() {
            char* s = "x";
            if (s) { return 1; }
            return 0;
        }
        """
        assert run_source(src)[0] == 1

    def test_for_with_compound_step(self):
        src = """
        int main() {
            int acc = 0;
            for (int i = 0; i < 64; i += 8) { acc += i; }
            return acc;
        }
        """
        assert run_source(src)[0] == sum(range(0, 64, 8))

    def test_while_with_side_effect_condition(self):
        src = """
        int main() {
            int i = 0;
            int acc = 0;
            while (i++ < 5) { acc += i; }
            return acc;
        }
        """
        assert run_source(src)[0] == 1 + 2 + 3 + 4 + 5
