"""mem2reg: scalar promotion, phi placement, dead-phi pruning."""

import pytest

from repro.analysis import promotable_allocas, promote_module
from repro.analysis.loops import LoopInfo
from repro.frontend import compile_minic
from repro.ir import Phi, verify_module
from repro.ir.instructions import Alloca, Load, Store
from repro.interp import Interpreter


def compile_raw(src):
    return compile_minic(src, promote=False)


def alloca_count(fn):
    return sum(1 for i in fn.instructions() if isinstance(i, Alloca))


def phi_count(fn):
    return sum(1 for i in fn.instructions() if isinstance(i, Phi))


class TestPromotability:
    def test_scalar_local_promotable(self):
        mod = compile_raw("int main() { int x = 1; return x; }")
        assert len(promotable_allocas(mod.function_named("main"))) == 1

    def test_address_taken_not_promotable(self):
        mod = compile_raw(
            "int main() { int x = 1; int* p = &x; *p = 2; return x; }")
        fn = mod.function_named("main")
        allocas = promotable_allocas(fn)
        names = {a.name for a in allocas}
        assert "x" not in names  # its address escapes into p

    def test_array_not_promotable(self):
        mod = compile_raw("int main() { int a[4]; a[0] = 1; return a[0]; }")
        fn = mod.function_named("main")
        assert all(a.name != "a" for a in promotable_allocas(fn))


class TestCorrectness:
    @pytest.mark.parametrize("src,expect", [
        ("int main() { int x = 1; x = x + 2; return x; }", 3),
        ("int main(int n) { int a = 0; for (int i = 0; i < n; i++)"
         " { a += i; } return a; }", 45),
        ("int main(int n) { int r; if (n > 5) { r = 1; } else { r = 2; }"
         " return r; }", 1),
        ("""int main(int n) {
            int a = 0;
            for (int i = 0; i < n; i++) {
                int b = i;
                if (i % 2) { b = b * 10; }
                a += b;
            }
            return a;
        }""", 0 + 10 + 2 + 30 + 4 + 50 + 6 + 70 + 8 + 90),
    ])
    def test_same_result_promoted_and_not(self, src, expect):
        for promote in (False, True):
            mod = compile_minic(src, promote=promote)
            assert Interpreter(mod).run(args=(10,)) == expect

    def test_promoted_module_verifies(self):
        mod = compile_raw("""
        int main(int n) {
            int a = 0;
            for (int i = 0; i < n; i++) {
                for (int j = 0; j < i; j++) { a += j; }
            }
            return a;
        }
        """)
        promote_module(mod)
        verify_module(mod)

    def test_loads_stores_eliminated(self):
        mod = compile_raw(
            "int main() { int x = 1; int y = x + 1; return y; }")
        fn = mod.function_named("main")
        before = alloca_count(fn)
        promote_module(mod)
        assert alloca_count(fn) < before
        assert not any(isinstance(i, (Load, Store)) for i in fn.instructions())


class TestPhiPlacement:
    def test_loop_counter_gets_header_phi(self):
        mod = compile_raw(
            "int main(int n) { int a = 0; for (int i = 0; i < n; i++)"
            " { a += i; } return a; }")
        fn = mod.function_named("main")
        promote_module(mod)
        header = fn.block_named("for.cond")
        phis = [i for i in header.instructions if isinstance(i, Phi)]
        assert len(phis) == 2  # i and a

    def test_if_merge_gets_phi(self):
        mod = compile_raw(
            "int main(int n) { int r = 0; if (n) { r = 1; } return r; }")
        fn = mod.function_named("main")
        promote_module(mod)
        merge = fn.block_named("if.end")
        assert any(isinstance(i, Phi) for i in merge.instructions)

    def test_dead_inner_counter_pruned_at_outer_header(self):
        # The inner counter j is reinitialized every outer iteration, so
        # the outer header must NOT carry a phi for it (that would look
        # like loop-carried scalar state and block DOALL).
        mod = compile_raw("""
        int main(int n) {
            int acc = 0;
            for (int i = 0; i < n; i++) {
                for (int j = 0; j < 4; j++) { acc += j; }
            }
            return acc;
        }
        """)
        fn = mod.function_named("main")
        promote_module(mod)
        li = LoopInfo(fn)
        outer = next(l for l in li.loops if l.depth == 1)
        header_phis = [i for i in outer.header.instructions if isinstance(i, Phi)]
        # exactly i and acc — no j phi
        assert len(header_phis) == 2

    def test_scoped_body_locals_leave_header_clean(self):
        mod = compile_raw("""
        int out[16];
        int main(int n) {
            for (int i = 0; i < n; i++) {
                int t = i * 2;
                out[i] = t + 1;
            }
            return out[0];
        }
        """)
        fn = mod.function_named("main")
        promote_module(mod)
        li = LoopInfo(fn)
        loop = li.loops[0]
        header_phis = [i for i in loop.header.instructions if isinstance(i, Phi)]
        assert len(header_phis) == 1  # only the IV

    def test_genuine_loop_carried_scalar_keeps_phi(self):
        mod = compile_raw("""
        int main(int n) {
            int prev = 0;
            int acc = 0;
            for (int i = 0; i < n; i++) {
                acc += prev;   /* reads last iteration's value */
                prev = i;
            }
            return acc;
        }
        """)
        fn = mod.function_named("main")
        promote_module(mod)
        header = fn.block_named("for.cond")
        phis = [i for i in header.instructions if isinstance(i, Phi)]
        assert len(phis) == 3  # i, acc, prev all live across iterations
        assert Interpreter(mod).run(args=(5,)) == 0 + 0 + 1 + 2 + 3
