"""Adaptive speculation controller: AIMD epoch sizing, misspec-rate
monitoring, demotion and sequential-fallback policy, policy persistence
and warm starts, and the end-to-end adaptive-vs-fixed win."""

import json

import pytest

from repro.adapt import (
    AdaptConfig,
    MisspecRateMonitor,
    PolicyStore,
    SpeculationController,
    apply_demotions,
    format_summary,
    resolve_adapt_enabled,
)
from repro.bench.pipeline import prepare
from repro.classify.classifier import HeapAssignment
from repro.classify.heaps import HeapKind
from repro.transform.plan import MAX_CHECKPOINT_PERIOD

from helpers import prepared_counter_program


@pytest.fixture(autouse=True)
def _isolated_policy_store(tmp_path, monkeypatch):
    """Never touch the user's ~/.cache/repro-adapt from the test suite."""
    monkeypatch.setenv("REPRO_ADAPT_DIR", str(tmp_path / "adapt"))


class TestResolveAdaptEnabled:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_ADAPT", raising=False)
        assert resolve_adapt_enabled() is False

    @pytest.mark.parametrize("value", ["1", "true", "YES", "On"])
    def test_env_truthy(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_ADAPT", value)
        assert resolve_adapt_enabled() is True

    @pytest.mark.parametrize("value", ["0", "false", "off", ""])
    def test_env_falsy(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_ADAPT", value)
        assert resolve_adapt_enabled() is False

    def test_explicit_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ADAPT", "1")
        assert resolve_adapt_enabled(False) is False
        monkeypatch.delenv("REPRO_ADAPT")
        assert resolve_adapt_enabled(True) is True


class TestMisspecRateMonitor:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            MisspecRateMonitor(window=0)

    def test_rates(self):
        m = MisspecRateMonitor(window=4)
        assert m.rate() == 0.0 and m.lifetime_rate() == 0.0
        m.record_commit(10)
        m.record_squash(10)
        assert m.rate() == 0.5
        assert m.lifetime_rate() == 0.5

    def test_window_ages_out_squashes(self):
        m = MisspecRateMonitor(window=2)
        m.record_squash(8)
        m.record_commit(8)
        m.record_commit(8)  # the squash falls out of the window here
        assert m.rate() == 0.0
        assert m.lifetime_rate() == pytest.approx(8 / 24)

    def test_misspec_kinds(self):
        m = MisspecRateMonitor()
        m.record_misspec("privacy")
        m.record_misspec("privacy")
        m.record_misspec("injected")
        snap = m.snapshot()
        assert snap["misspecs_by_kind"] == {"injected": 1, "privacy": 2}


class TestAdaptConfig:
    def test_max_epoch_clamped_to_shadow_limit(self):
        cfg = AdaptConfig(max_epoch=10_000)
        assert cfg.max_epoch == MAX_CHECKPOINT_PERIOD

    def test_clamp(self):
        cfg = AdaptConfig(min_epoch=4, max_epoch=32)
        assert cfg.clamp(1) == 4
        assert cfg.clamp(100) == 32
        assert cfg.clamp(16) == 16


class TestControllerAIMD:
    def _controller(self, **cfg):
        c = SpeculationController(config=AdaptConfig(**cfg))
        c.begin_invocation(16)
        return c

    def test_additive_grow_on_commit(self):
        c = self._controller(grow_add=4)
        c.note_commit(0, 16)
        assert c.next_epoch_size() == 20
        assert c.grows == 1

    def test_multiplicative_shrink_on_squash(self):
        c = self._controller(shrink_num=1, shrink_den=2)
        c.on_squash(8, "injected")
        assert c.next_epoch_size() == 8
        c.on_squash(8, "injected")
        assert c.next_epoch_size() == 4
        assert c.shrinks == 2

    def test_bounds_respected(self):
        c = self._controller(min_epoch=2, max_epoch=24)
        for _ in range(10):
            c.on_squash(1, "x")
        assert c.next_epoch_size() == 2
        for _ in range(10):
            c.note_commit(0, 2)
        assert c.next_epoch_size() == 24

    def test_warm_start_seed_ignores_default(self):
        store = PolicyStore()
        store.update("fp", "loop", epoch_size=48)
        c = SpeculationController(key="fp", loop="loop", store=store)
        assert c.warm_start
        c.begin_invocation(16)
        assert c.next_epoch_size() == 48

    def test_second_invocation_keeps_learned_size(self):
        c = self._controller()
        c.note_commit(0, 16)
        c.begin_invocation(16)  # no-op: epoch already seeded
        assert c.next_epoch_size() == 20


class TestControllerFallback:
    def _stormy(self, fallback_after=3, **cfg):
        c = SpeculationController(config=AdaptConfig(
            fallback_after=fallback_after, **cfg))
        c.begin_invocation(16)
        for _ in range(fallback_after):
            c.on_squash(4, "injected")
        return c

    def test_triggers_after_consecutive_squashes(self):
        c = self._stormy(fallback_after=3)
        assert c.should_fallback()

    def test_commit_resets_the_counter(self):
        c = SpeculationController(config=AdaptConfig(fallback_after=3))
        c.begin_invocation(16)
        c.on_squash(4, "x")
        c.on_squash(4, "x")
        c.note_commit(0, 4)
        c.on_squash(4, "x")
        assert not c.should_fallback()

    def test_exponential_backoff(self):
        c = self._stormy(backoff_initial=8, backoff_factor=2, backoff_max=20)
        assert c.begin_fallback() == 8
        # One more squash right after the probe resumes re-triggers with
        # a doubled span, capped at backoff_max.
        c.on_squash(4, "x")
        assert c.should_fallback()
        assert c.begin_fallback() == 16
        c.on_squash(4, "x")
        assert c.begin_fallback() == 20
        c.end_fallback(20)
        assert c.sequential_iterations == 20
        assert c.fallbacks == 3

    def test_commit_resets_backoff(self):
        c = self._stormy(backoff_initial=8)
        c.begin_fallback()
        c.note_commit(0, 4)
        assert c.backoff == 8


class TestControllerDemotion:
    def test_demotes_after_k_strikes(self):
        c = SpeculationController(config=AdaptConfig(demote_after=3))
        c.begin_invocation(16)
        for _ in range(2):
            c.note_misspec("privacy", 5, "global:state")
        assert not c.new_demotions
        c.note_misspec("privacy", 9, "global:state")
        assert c.new_demotions == {"global:state"}
        assert c.decision_counts()["demotions"] == 1

    def test_unattributed_misspecs_never_demote(self):
        c = SpeculationController(config=AdaptConfig(demote_after=1))
        c.begin_invocation(16)
        c.note_misspec("injected", 3, None)
        assert not c.new_demotions

    def test_already_persisted_sites_not_recounted(self):
        store = PolicyStore()
        store.update("fp", "loop", epoch_size=8,
                     demotions=["global:state"])
        c = SpeculationController(key="fp", loop="loop", store=store,
                                  config=AdaptConfig(demote_after=1))
        c.begin_invocation(16)
        c.note_misspec("privacy", 0, "global:state")
        assert not c.new_demotions
        assert c.persisted_demotions == {"global:state"}


class TestControllerSummary:
    def test_converged_requires_shrink_and_recovery(self):
        c = SpeculationController()
        c.begin_invocation(16)
        assert not c.converged()
        c.on_squash(4, "x")        # 16 -> 8
        assert not c.converged()   # still at the minimum seen
        c.note_commit(0, 8)        # 8 -> 12
        assert c.converged()

    def test_format_summary_line(self):
        c = SpeculationController()
        c.begin_invocation(16)
        c.on_squash(4, "x")
        c.note_commit(0, 8)
        line = format_summary(c.summary())
        assert "epoch 16->8->12" in line
        assert "converged=yes" in line
        assert c.summary_line() == line

    def test_save_without_store_is_noop(self):
        c = SpeculationController()
        c.begin_invocation(16)
        c.save()  # must not raise


class TestPolicyStore:
    def test_round_trip(self, tmp_path):
        store = PolicyStore(tmp_path)
        store.update("fp1", "main:for.cond", epoch_size=48,
                     demotions=["global:a"], fallbacks=2, workload="w")
        entry = store.loop_policy("fp1", "main:for.cond")
        assert entry["epoch_size"] == 48
        assert entry["demotions"] == ["global:a"]
        assert entry["fallbacks"] == 2
        assert entry["runs"] == 1

    def test_demotions_union_across_runs(self, tmp_path):
        store = PolicyStore(tmp_path)
        store.update("fp", "l", epoch_size=8, demotions=["global:a"])
        store.update("fp", "l", epoch_size=16, demotions=["global:b"])
        assert store.demotions_for("fp", "l") == ["global:a", "global:b"]
        assert store.loop_policy("fp", "l")["runs"] == 2

    def test_miss_on_unknown_fingerprint(self, tmp_path):
        assert PolicyStore(tmp_path).load("nope") is None

    def test_miss_on_corrupt_file(self, tmp_path):
        store = PolicyStore(tmp_path)
        store.update("fp", "l", epoch_size=8)
        store.path_for("fp").write_text("{not json")
        assert store.load("fp") is None

    def test_miss_on_version_mismatch(self, tmp_path):
        store = PolicyStore(tmp_path)
        store.update("fp", "l", epoch_size=8)
        data = json.loads(store.path_for("fp").read_text())
        data["version"] = 999
        store.path_for("fp").write_text(json.dumps(data))
        assert store.load("fp") is None

    def test_env_var_controls_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ADAPT_DIR", str(tmp_path / "policies"))
        store = PolicyStore()
        store.update("fp", "l", epoch_size=8)
        assert store.path_for("fp").parent == tmp_path / "policies"
        assert store.loop_policy("fp", "l")["epoch_size"] == 8


class TestApplyDemotions:
    def _assignment(self):
        a = HeapAssignment(loop=None)
        a.site_heaps = {"global:a": HeapKind.PRIVATE,
                        "global:b": HeapKind.REDUX,
                        "global:c": HeapKind.UNRESTRICTED}
        a.redux_ops = {"global:b": "ADD"}
        return a

    def test_demotes_speculative_sites(self):
        a = self._assignment()
        applied = apply_demotions(a, ["global:a", "global:b"])
        assert applied == ["global:a", "global:b"]
        assert a.site_heaps["global:a"] is HeapKind.UNRESTRICTED
        assert a.site_heaps["global:b"] is HeapKind.UNRESTRICTED
        assert "global:b" not in a.redux_ops

    def test_skips_unknown_and_already_unrestricted(self):
        a = self._assignment()
        assert apply_demotions(a, ["global:c", "global:zzz"]) == []


class TestAdaptiveExecution:
    """End-to-end: the controller plugged into the executors."""

    def test_fewer_squashed_iterations_than_fixed(self):
        prog = prepared_counter_program(64)
        fixed = prog.execute(workers=4, misspec_period=5)
        adaptive = prog.execute(workers=4, misspec_period=5, adapt=True)
        assert adaptive.output == fixed.output
        assert adaptive.return_value == fixed.return_value

        def squashed(result):
            return sum(i.recovered_iterations for i in result.invocations)

        assert squashed(adaptive) < squashed(fixed)
        assert adaptive.adapt["shrinks"] > 0

    def test_fallback_engages_under_sustained_storm(self):
        prog = prepared_counter_program(64)
        fixed = prog.execute(workers=4, misspec_period=2)
        adaptive = prog.execute(workers=4, misspec_period=2, adapt=True)
        assert adaptive.output == fixed.output
        assert adaptive.adapt["fallbacks"] > 0
        assert adaptive.adapt["sequential_iterations"] > 0
        total_seq = sum(i.sequential_iterations
                        for i in adaptive.invocations)
        assert total_seq == adaptive.adapt["sequential_iterations"]

    def test_burst_then_recovery_converges(self):
        prog = prepared_counter_program(64)
        adaptive = prog.execute(workers=4, misspec_period=2,
                                misspec_burst=30, adapt=True)
        s = adaptive.adapt
        assert s["min_epoch"] < s["initial_epoch"]     # it shrank
        assert s["final_epoch"] > s["min_epoch"]       # then recovered
        assert s["converged"] is True

    def test_clean_run_overhead_within_budget(self):
        prog = prepared_counter_program(64)
        fixed = prog.execute(workers=4)
        adaptive = prog.execute(workers=4, adapt=True)
        assert adaptive.output == fixed.output
        assert adaptive.total_wall_cycles <= fixed.total_wall_cycles * 1.02

    def test_no_adapt_fully_bypasses(self):
        prog = prepared_counter_program(32)
        result = prog.execute(workers=4, adapt=False)
        assert result.adapt is None
        assert not list((PolicyStore().path_for("x").parent).glob("*.json")) \
            if PolicyStore().path_for("x").parent.exists() else True

    def test_env_var_enables_through_prepare(self, monkeypatch):
        monkeypatch.setenv("REPRO_ADAPT", "1")
        prog = prepared_counter_program(32)
        assert prog.adapt_enabled
        result = prog.execute(workers=4)
        assert result.adapt is not None

    def test_timeline_records_sequential_spans(self):
        prog = prepared_counter_program(64)
        adaptive = prog.execute(workers=4, misspec_period=2, adapt=True,
                                record_timeline=True)
        kinds = {e.kind for e in adaptive.timeline.events}
        assert "sequential" in kinds
        assert "s sequential span" in adaptive.timeline.render()


class TestWarmStart:
    def test_policy_persisted_and_reloaded(self):
        prog = prepared_counter_program(64)
        first = prog.execute(workers=4, misspec_period=5, misspec_burst=30,
                             adapt=True)
        assert first.adapt["warm_start"] is False
        store = PolicyStore()
        entry = store.loop_policy(prog.fingerprint, str(prog.plan.ref))
        assert entry is not None
        assert entry["epoch_size"] == first.adapt["final_epoch"]

        second = prog.execute(workers=4, misspec_period=5, misspec_burst=30,
                              adapt=True)
        assert second.adapt["warm_start"] is True
        assert second.adapt["initial_epoch"] == first.adapt["final_epoch"]
        assert second.output == first.output


SRC_PRIVACY = """
int state[8];
int out[128];
int main(int n, int cut) {
    for (int i = 0; i < n; i++) {
        if (i < cut) { state[0] = i * 3; }
        out[i] = state[0] + i;
        for (int j = 0; j < 25; j++) { out[i] += j; }
    }
    printf("%d %d %d\\n", out[1], out[5], out[n-1]);
    return 0;
}
"""


class TestDemotionEndToEnd:
    """Genuine privacy misspeculations attribute to the offending object
    site, persist a demotion, and change the next run's plan."""

    def _run_with_demotion(self, demote_after=2):
        # Profiled with cut=n (state written every iteration, so it
        # classifies private), executed with cut=n/2: later iterations
        # read state[0] live-in, so every epoch past the cut raises a
        # privacy misspeculation whose detail names the offending byte.
        prog = prepare(SRC_PRIVACY, "demotion_e2e", args=(24, 24),
                       ref_args=(24, 12), adapt=True)
        config = AdaptConfig(demote_after=demote_after)
        result = prog.execute(workers=4, adapt=True, adapt_config=config)
        return prog, result

    def test_misspec_attributed_and_demotion_recorded(self):
        prog, result = self._run_with_demotion()
        assert result.output == prog.sequential.output
        assert any(m.kind == "privacy"
                   for m in result.runtime_stats.misspeculations)
        assert result.adapt["demotions"] == ["global:state"]
        stored = PolicyStore().demotions_for(prog.fingerprint,
                                             str(prog.plan.ref))
        assert stored == ["global:state"]

    def test_next_prepare_replans_around_the_demotion(self):
        prog, _result = self._run_with_demotion()
        replanned = prepare(SRC_PRIVACY, "demotion_e2e", args=(24, 24),
                            ref_args=(24, 12), adapt=True)
        # The demoted object makes the original loop untransformable, so
        # the pipeline falls through to the next hottest candidate...
        assert str(replanned.plan.ref) != str(prog.plan.ref)
        reasons = replanned.rejected[prog.plan.ref]
        assert any("unrestricted" in r and "global:state" in r
                   for r in reasons)
        # ... which no longer speculates on state and runs clean.
        rerun = replanned.execute(workers=4, adapt=True)
        assert rerun.output == replanned.sequential.output
        assert rerun.runtime_stats.misspec_count() == 0

    def test_no_adapt_prepare_ignores_the_store(self):
        prog, _result = self._run_with_demotion()
        fresh = prepare(SRC_PRIVACY, "demotion_e2e", args=(24, 24),
                        ref_args=(24, 12))
        assert not fresh.adapt_enabled
        assert fresh.applied_demotions == []
        assert str(fresh.plan.ref) == str(prog.plan.ref)
        assert fresh.assignment.site_heaps["global:state"] is \
            HeapKind.PRIVATE
