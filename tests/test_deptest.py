"""Affine analysis (SCEV-lite) and static loop dependence tests, including
the DOALL-only legality verdicts that drive Figure 7."""

import pytest

from repro.analysis import LoopInfo, doall_legal_static
from repro.analysis.scev import as_affine, decompose_pointer
from repro.frontend import compile_minic
from repro.ir.instructions import Store


def _verdict(src, header="for.cond", fn_name="main"):
    mod = compile_minic(src)
    fn = mod.function_named(fn_name)
    li = LoopInfo(fn)
    loop = li.loop_with_header(header)
    return doall_legal_static(mod, loop, li)


class TestAffine:
    def test_store_offset_affine_in_iv(self):
        mod = compile_minic("""
        int a[64];
        int main(int n) {
            for (int i = 0; i < n; i++) { a[i] = i; }
            return 0;
        }
        """)
        fn = mod.function_named("main")
        store = next(i for i in fn.instructions() if isinstance(i, Store))
        base, offset = decompose_pointer(store.pointer)
        assert offset is not None
        li = LoopInfo(fn)
        iv = li.find_induction_variable(li.loops[0])
        assert offset.coeff_of(iv.phi) == 4  # int stride
        assert offset.const == 0

    def test_shifted_offset(self):
        mod = compile_minic("""
        int a[64];
        int main(int n) {
            for (int i = 0; i < n; i++) { a[2 * i + 3] = i; }
            return 0;
        }
        """)
        fn = mod.function_named("main")
        store = next(i for i in fn.instructions() if isinstance(i, Store))
        _, offset = decompose_pointer(store.pointer)
        li = LoopInfo(fn)
        iv = li.find_induction_variable(li.loops[0])
        assert offset.coeff_of(iv.phi) == 8
        assert offset.const == 12

    def test_nonaffine_is_none(self):
        mod = compile_minic("""
        int a[64];
        int main(int n) {
            for (int i = 0; i < n; i++) { a[i * i % 64] = i; }
            return 0;
        }
        """)
        fn = mod.function_named("main")
        store = next(i for i in fn.instructions() if isinstance(i, Store))
        _, offset = decompose_pointer(store.pointer)
        assert offset is None

    def test_affine_algebra(self):
        from repro.analysis.scev import Affine

        a = Affine(3, {})
        b = Affine(4, {})
        assert a.add(b).const == 7
        assert a.negate().const == -3
        assert a.scale(5).const == 15


class TestDOALLLegality:
    def test_independent_array_loop_legal(self):
        v = _verdict("""
        int a[64];
        int main(int n) {
            for (int i = 0; i < n; i++) { a[i] = a[i] * 2 + 1; }
            return 0;
        }
        """)
        assert v.legal, v.reasons

    def test_reused_scratch_illegal(self):
        v = _verdict("""
        int scratch[8];
        int out[64];
        int main(int n) {
            for (int i = 0; i < n; i++) {
                scratch[0] = i;
                out[i] = scratch[0];
            }
            return 0;
        }
        """)
        assert not v.legal
        assert any("same location" in r or "memory dep" in r for r in v.reasons)

    def test_loop_carried_flow_illegal(self):
        v = _verdict("""
        int a[64];
        int main(int n) {
            for (int i = 1; i < n; i++) { a[i] = a[i - 1] + 1; }
            return 0;
        }
        """)
        assert not v.legal

    def test_scalar_accumulator_illegal(self):
        v = _verdict("""
        int main(int n) {
            int acc = 0;
            for (int i = 0; i < n; i++) { acc += i; }
            return acc;
        }
        """)
        assert not v.legal
        assert any("scalar" in r for r in v.reasons)

    def test_io_illegal(self):
        v = _verdict("""
        int a[64];
        int main(int n) {
            for (int i = 0; i < n; i++) { a[i] = i; printf("%d", i); }
            return 0;
        }
        """)
        assert not v.legal
        assert any("I/O" in r for r in v.reasons)

    def test_unanalyzable_pointer_illegal(self):
        v = _verdict("""
        struct n { int v; struct n* next; };
        struct n* head;
        int main(int n) {
            for (int i = 0; i < n; i++) {
                struct n* c = (struct n*)malloc(sizeof(struct n));
                c->v = i;
                c->next = head;
                head = c;
            }
            return 0;
        }
        """)
        assert not v.legal

    def test_inner_loop_with_outer_invariant_subscript_legal(self):
        # d[h][o] += x[o]: analyzing the o-loop, the h term is a common
        # invariant symbol, so distinct o's touch distinct elements.
        mod = compile_minic("""
        double d[8][4];
        double x[4];
        int main(int n) {
            for (int h = 0; h < 8; h++) {
                for (int o = 0; o < 4; o++) { d[h][o] += x[o]; }
            }
            return 0;
        }
        """)
        fn = mod.function_named("main")
        li = LoopInfo(fn)
        inner = next(l for l in li.loops if l.depth == 2)
        v = doall_legal_static(mod, inner, li)
        assert v.legal, v.reasons

    def test_outer_loop_of_same_nest_illegal(self):
        mod = compile_minic("""
        double d[8][4];
        double x[4];
        int main(int n) {
            for (int h = 0; h < 8; h++) {
                for (int o = 0; o < 4; o++) { d[h][o] += x[o]; }
            }
            return 0;
        }
        """)
        fn = mod.function_named("main")
        li = LoopInfo(fn)
        outer = next(l for l in li.loops if l.depth == 1)
        v = doall_legal_static(mod, outer, li)
        assert not v.legal  # inner IV varies within the outer loop

    def test_rand_in_loop_illegal(self):
        v = _verdict("""
        int a[64];
        int main(int n) {
            for (int i = 0; i < n; i++) { a[i] = (int)rand_int(); }
            return 0;
        }
        """)
        assert not v.legal


class TestReductionRecognition:
    def test_compound_add_recognized(self):
        from repro.analysis import find_reduction_updates

        mod = compile_minic("""
        long total;
        int main(int n) {
            for (int i = 0; i < n; i++) { total += i; }
            return 0;
        }
        """)
        ups = find_reduction_updates(mod.function_named("main"))
        assert len(ups) == 1
        assert ups[0].operator.name == "ADD"

    def test_explicit_form_recognized(self):
        from repro.analysis import find_reduction_updates

        mod = compile_minic("""
        long total;
        int main(int n) {
            for (int i = 0; i < n; i++) { total = total * 2; }
            return 0;
        }
        """)
        ups = find_reduction_updates(mod.function_named("main"))
        assert len(ups) == 1 and ups[0].operator.name == "MUL"

    def test_subtraction_not_a_reduction(self):
        from repro.analysis import find_reduction_updates

        mod = compile_minic("""
        long total;
        int main(int n) {
            for (int i = 0; i < n; i++) { total = total - i; }
            return 0;
        }
        """)
        assert find_reduction_updates(mod.function_named("main")) == []

    def test_array_element_reduction(self):
        from repro.analysis import find_reduction_updates

        mod = compile_minic("""
        double hist[16];
        int main(int n) {
            for (int i = 0; i < n; i++) { hist[i % 16] += 1.0; }
            return 0;
        }
        """)
        ups = find_reduction_updates(mod.function_named("main"))
        assert len(ups) == 1 and ups[0].operator.name == "FADD"

    def test_apply_operator(self):
        from repro.analysis import apply_operator
        from repro.ir.instructions import BinOpKind

        assert apply_operator(BinOpKind.ADD, 2, 3) == 5
        assert apply_operator(BinOpKind.FMUL, 2.0, 4.0) == 8.0
        assert apply_operator(BinOpKind.XOR, 0b110, 0b011) == 0b101
        with pytest.raises(ValueError):
            apply_operator(BinOpKind.SUB, 1, 2)

    def test_identity_table(self):
        from repro.analysis import REDUCTION_IDENTITY
        from repro.ir.instructions import BinOpKind

        assert REDUCTION_IDENTITY[BinOpKind.ADD] == 0
        assert REDUCTION_IDENTITY[BinOpKind.MUL] == 1
        assert REDUCTION_IDENTITY[BinOpKind.FMUL] == 1.0
