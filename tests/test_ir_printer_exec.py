"""Printer coverage for every instruction shape, plus interpreter
execution of the forms the frontend rarely emits (select, unreachable)."""

import pytest

from repro.interp import GuestFault, Interpreter
from repro.ir import (
    CastKind,
    CmpPred,
    ConstInt,
    Function,
    FunctionType,
    IRBuilder,
    Module,
    Phi,
    format_function,
    format_instruction,
    format_module,
)
from repro.ir.types import F64, I32, I64, PointerType


@pytest.fixture
def env():
    mod = Module("p")
    fn = Function("main", FunctionType(I64, ()))
    mod.add_function(fn)
    b = IRBuilder(mod, fn.add_block("entry"))
    return mod, fn, b


class TestPrinterCoverage:
    def test_all_instruction_spellings(self, env):
        mod, fn, b = env
        slot = b.alloca(I64, 2, name="slot")
        b.store(1, slot)
        loaded = b.load(slot, I64)
        moved = b.ptradd(slot, 8, I64)
        summed = b.add(loaded, loaded)
        cmp = b.icmp(CmpPred.LT, summed, 100)
        fslot = b.alloca(F64)
        fval = b.load(fslot, F64)
        fcmp = b.fcmp(CmpPred.GT, fval, 0.0)
        cast = b.cast(CastKind.SEXT, b.load(b.alloca(I32), I32), I64)
        sel = b.select(cmp, summed, 0)
        call = b.call_intrinsic("malloc", [8])
        b.ret(sel)

        text = format_function(fn)
        for needle in ("alloca", "store", "load", "ptradd", "add", "icmp lt",
                       "fcmp gt", "sext", "select", "call @malloc", "ret"):
            assert needle in text, needle

    def test_phi_rendering(self, env):
        mod, fn, b = env
        other = fn.add_block("other")
        phi = Phi(I64, "merge")
        phi.add_incoming(fn.entry, ConstInt(I64, 1))
        phi.add_incoming(other, ConstInt(I64, 2))
        text = format_instruction(phi)
        assert "phi" in text and "%entry" in text and "%other" in text

    def test_branch_rendering(self, env):
        mod, fn, b = env
        t = fn.add_block("t")
        f = fn.add_block("f")
        cond = b.icmp(CmpPred.EQ, 1, 1)
        b.condbr(cond, t, f)
        text = format_function(fn)
        assert "condbr" in text and "label %t" in text

    def test_module_rendering(self):
        from repro.frontend import compile_minic

        mod = compile_minic("""
        struct pair { int a; int b; };
        int counter = 5;
        const int lim = 9;
        int main() { printf("x"); return counter; }
        """)
        text = format_module(mod)
        assert "%pair = struct" in text
        assert "@counter = global" in text
        assert "@lim = constant" in text
        assert "@.str0" in text
        assert "declare" in text  # printf declaration

    def test_privateer_annotations_shown(self):
        from repro.workloads import DIJKSTRA

        prog = DIJKSTRA.prepare_small()
        text = format_function(prog.module.function_named("dequeueQ"))
        assert "; privateer:" in text


class TestRareInstructionExecution:
    def test_select_both_arms(self, env):
        mod, fn, b = env
        cond_true = b.icmp(CmpPred.LT, 1, 2)
        a = b.select(cond_true, 10, 20)
        cond_false = b.icmp(CmpPred.GT, 1, 2)
        c = b.select(cond_false, 100, 200)
        b.ret(b.add(a, c))
        assert Interpreter(mod).run() == 210

    def test_unreachable_faults(self, env):
        mod, fn, b = env
        b.unreachable()
        with pytest.raises(GuestFault, match="unreachable"):
            Interpreter(mod).run()

    def test_bitcast_int_float_roundtrip(self, env):
        mod, fn, b = env
        fslot = b.alloca(F64)
        b.store(2.5, fslot)
        fval = b.load(fslot, F64)
        as_bits = b.cast(CastKind.BITCAST, fval, I64)
        back = b.cast(CastKind.BITCAST, as_bits, F64)
        as_int = b.cast(CastKind.FPTOSI, back, I64)
        b.ret(as_int)
        assert Interpreter(mod).run() == 2

    def test_fptosi_of_nan_is_zero(self, env):
        mod, fn, b = env
        zero_slot = b.alloca(F64)
        z = b.load(zero_slot, F64)
        nan = b.fdiv(z, z)
        b.ret(b.cast(CastKind.FPTOSI, nan, I64))
        assert Interpreter(mod).run() == 0

    def test_ptrtoint_inttoptr_roundtrip(self, env):
        mod, fn, b = env
        slot = b.alloca(I64)
        b.store(99, slot)
        as_int = b.cast(CastKind.PTRTOINT, slot, I64)
        back = b.cast(CastKind.INTTOPTR, as_int, PointerType(I64))
        b.ret(b.load(back, I64))
        assert Interpreter(mod).run() == 99
