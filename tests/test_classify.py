"""Classification (Algorithm 1): heap assignment from profiles."""

import pytest

from repro.classify import HeapKind, classify
from repro.frontend import compile_minic
from repro.profiling import (
    FlowDep,
    LoopProfile,
    LoopRef,
    ValuePrediction,
    profile_execution_time,
    profile_loop,
)


def _profile(**kwargs) -> LoopProfile:
    p = LoopProfile(LoopRef("f", "loop"))
    for key, value in kwargs.items():
        setattr(p, key, value)
    return p


class TestAlgorithm1:
    def test_written_object_is_private(self):
        a = classify(_profile(write_sites={"o"}))
        assert a.site_heaps["o"] is HeapKind.PRIVATE

    def test_read_only_object(self):
        a = classify(_profile(read_sites={"r"}, write_sites={"w"}))
        assert a.site_heaps["r"] is HeapKind.READONLY
        assert a.site_heaps["w"] is HeapKind.PRIVATE

    def test_read_and_written_is_private(self):
        a = classify(_profile(read_sites={"o"}, write_sites={"o"}))
        assert a.site_heaps["o"] is HeapKind.PRIVATE

    def test_short_lived_wins_over_private(self):
        a = classify(_profile(write_sites={"o"}, read_sites={"o"},
                              short_lived_sites={"o"}))
        assert a.site_heaps["o"] is HeapKind.SHORTLIVED

    def test_short_lived_requires_footprint(self):
        a = classify(_profile(short_lived_sites={"o"}))
        assert "o" not in a.site_heaps  # allocated but never accessed

    def test_pure_reduction(self):
        a = classify(_profile(redux_sites={"o"}, redux_ops={"o": "FADD"}))
        assert a.site_heaps["o"] is HeapKind.REDUX
        assert a.redux_ops["o"] == "FADD"

    def test_reduction_also_read_is_disqualified(self):
        a = classify(_profile(redux_sites={"o"}, read_sites={"o"},
                              redux_ops={"o": "ADD"}))
        assert a.site_heaps["o"] is not HeapKind.REDUX

    def test_flow_dep_makes_unrestricted(self):
        dep = FlowDep("s1", "l1", "o")
        a = classify(_profile(write_sites={"o"}, read_sites={"o"},
                              flow_deps={dep}))
        assert a.site_heaps["o"] is HeapKind.UNRESTRICTED
        assert dep in a.residual_deps

    def test_short_lived_trumps_deps(self):
        # Algorithm 1: Unrestricted = F \ ShortLived \ Redux.
        dep = FlowDep("s1", "l1", "o")
        a = classify(_profile(write_sites={"o"}, read_sites={"o"},
                              short_lived_sites={"o"}, flow_deps={dep}))
        assert a.site_heaps["o"] is HeapKind.SHORTLIVED

    def test_value_prediction_removes_deps(self):
        dep = FlowDep("s1", "l1", "global:o")
        vp = ValuePrediction("global:o", 0, 8, 0)
        a = classify(_profile(
            write_sites={"global:o"}, read_sites={"global:o"},
            flow_deps={dep}, value_predictions={vp: {dep}}))
        assert a.site_heaps["global:o"] is HeapKind.PRIVATE
        assert vp in a.predictions
        assert dep in a.removed_deps

    def test_partial_prediction_insufficient(self):
        d1 = FlowDep("s1", "l1", "global:o")
        d2 = FlowDep("s2", "l2", "global:o")
        vp = ValuePrediction("global:o", 0, 8, 0)
        a = classify(_profile(
            write_sites={"global:o"}, read_sites={"global:o"},
            flow_deps={d1, d2}, value_predictions={vp: {d1}}))
        assert a.site_heaps["global:o"] is HeapKind.UNRESTRICTED
        assert not a.predictions

    def test_extras_flags(self):
        a = classify(_profile(io_sites={"c1"},
                              unexecuted_blocks={("f", "bb")}))
        assert a.uses_io_deferral and a.uses_control_speculation
        assert set(a.extras()) == {"Control", "I/O"}

    def test_counts(self):
        a = classify(_profile(
            write_sites={"p1", "p2"}, read_sites={"r1"},
            redux_sites={"x"}, redux_ops={"x": "ADD"}))
        counts = a.counts()
        assert counts["private"] == 2
        assert counts["read_only"] == 1
        assert counts["redux"] == 1
        assert counts["unrestricted"] == 0


class TestEndToEndClassification:
    def _classify(self, src, args):
        mod = compile_minic(src)
        report = profile_execution_time(mod, args=args)
        ref = report.hottest(top_level_only=False)[0].ref
        return classify(profile_loop(mod, ref, args=args))

    def test_figure4_shape(self):
        """The dijkstra heap assignment of Figure 4: queue + pathcost
        private, nodes short-lived, adjacency read-only."""
        from repro.workloads import DIJKSTRA

        a = self._classify(DIJKSTRA.source, DIJKSTRA.train)
        assert "global:Q" in a.private_sites
        assert "global:pathcost" in a.private_sites
        assert "global:adj" in a.readonly_sites
        assert len(a.shortlived_sites) == 1
        assert not a.unrestricted_sites

    def test_static_footprint_helper(self):
        from repro.classify import get_footprint

        mod = compile_minic("""
        int g[8];
        long total;
        void bump(int i) { g[i % 8] = i; }
        int main(int n) {
            for (int i = 0; i < n; i++) { bump(i); total += i; }
            return 0;
        }
        """)
        fn = mod.function_named("main")
        reads, writes, redux = get_footprint(mod, fn, fn.blocks)
        assert any("g" in w for w in writes)
        assert any("total" in x for x in redux)
