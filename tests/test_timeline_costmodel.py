"""Timeline rendering and cost-model arithmetic."""

import pytest

from repro.parallel.costmodel import CostModelConfig, DEFAULT_COSTS
from repro.parallel.timeline import Timeline, TimelineEvent


class TestCostModel:
    def test_spawn_scales_with_workers(self):
        c = CostModelConfig()
        assert c.spawn_time(24) > c.spawn_time(4) > c.spawn_base

    def test_join_scales_with_workers(self):
        c = CostModelConfig()
        assert c.join_time(24) - c.join_time(23) == c.join_per_worker

    def test_defaults_are_positive(self):
        for field in ("spawn_base", "spawn_per_worker", "join_base",
                      "join_per_worker", "recovery_fixed"):
            assert getattr(DEFAULT_COSTS, field) > 0

    def test_custom_config_flows_into_executor(self):
        from tests.helpers import prepared_counter_program

        prog = prepared_counter_program(16)
        cheap = CostModelConfig(spawn_base=1, spawn_per_worker=1,
                                join_base=1, join_per_worker=1)
        dear = CostModelConfig(spawn_base=500_000, spawn_per_worker=50_000,
                               join_base=500_000, join_per_worker=50_000)
        fast = prog.execute(workers=4, costs=cheap)
        slow = prog.execute(workers=4, costs=dear)
        assert fast.total_wall_cycles < slow.total_wall_cycles
        assert fast.output == slow.output


class TestTimeline:
    def _sample(self):
        t = Timeline()
        t.add("spawn", None, 0, 10)
        t.add("iteration", 0, 10, 40, "i=0")
        t.add("iteration", 1, 10, 35, "i=1")
        t.add("checkpoint", None, 40, 45)
        t.add("misspec", 1, 45, 50)
        t.add("recovery", None, 50, 70)
        t.add("join", None, 70, 80)
        return t

    def test_render_contains_all_workers(self):
        text = self._sample().render(width=40)
        assert "worker 0" in text and "worker 1" in text

    def test_render_symbols(self):
        text = self._sample().render(width=40)
        assert "=" in text          # iterations
        assert "C" in text          # checkpoint
        assert "X" in text          # misspec
        assert "R" in text          # recovery
        assert "legend" in text

    def test_empty_timeline(self):
        assert "empty" in Timeline().render()

    def test_events_are_recorded_in_order(self):
        t = self._sample()
        kinds = [e.kind for e in t.events]
        assert kinds == ["spawn", "iteration", "iteration", "checkpoint",
                         "misspec", "recovery", "join"]

    def test_event_fields(self):
        e = TimelineEvent("iteration", 2, 5, 9, "i=7")
        assert (e.worker, e.start, e.end, e.label) == (2, 5, 9, "i=7")
