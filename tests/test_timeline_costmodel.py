"""Timeline rendering and cost-model arithmetic."""

import pytest

from repro.parallel.costmodel import CostModelConfig, DEFAULT_COSTS
from repro.parallel.timeline import Timeline, TimelineEvent


class TestCostModel:
    def test_spawn_scales_with_workers(self):
        c = CostModelConfig()
        assert c.spawn_time(24) > c.spawn_time(4) > c.spawn_base

    def test_join_scales_with_workers(self):
        c = CostModelConfig()
        assert c.join_time(24) - c.join_time(23) == c.join_per_worker

    def test_defaults_are_positive(self):
        for field in ("spawn_base", "spawn_per_worker", "join_base",
                      "join_per_worker", "recovery_fixed"):
            assert getattr(DEFAULT_COSTS, field) > 0

    def test_custom_config_flows_into_executor(self):
        from tests.helpers import prepared_counter_program

        prog = prepared_counter_program(16)
        cheap = CostModelConfig(spawn_base=1, spawn_per_worker=1,
                                join_base=1, join_per_worker=1)
        dear = CostModelConfig(spawn_base=500_000, spawn_per_worker=50_000,
                               join_base=500_000, join_per_worker=50_000)
        fast = prog.execute(workers=4, costs=cheap)
        slow = prog.execute(workers=4, costs=dear)
        assert fast.total_wall_cycles < slow.total_wall_cycles
        assert fast.output == slow.output


class TestTimeline:
    def _sample(self):
        t = Timeline()
        t.add("spawn", None, 0, 10)
        t.add("iteration", 0, 10, 40, "i=0")
        t.add("iteration", 1, 10, 35, "i=1")
        t.add("checkpoint", None, 40, 45)
        t.add("misspec", 1, 45, 50)
        t.add("recovery", None, 50, 70)
        t.add("join", None, 70, 80)
        return t

    def test_render_contains_all_workers(self):
        text = self._sample().render(width=40)
        assert "worker 0" in text and "worker 1" in text

    def test_render_symbols(self):
        text = self._sample().render(width=40)
        assert "=" in text          # iterations
        assert "C" in text          # checkpoint
        assert "X" in text          # misspec
        assert "R" in text          # recovery
        assert "legend" in text

    def test_empty_timeline(self):
        assert "empty" in Timeline().render()

    def test_empty_worker_timeline(self):
        """Only runtime-wide (worker=None) events: no worker rows, but the
        marker row and legend still render."""
        t = Timeline()
        t.add("spawn", None, 0, 10)
        t.add("join", None, 10, 20)
        text = t.render(width=20)
        assert "worker" not in text.splitlines()[0]
        assert "events  :" in text and "legend" in text
        assert "S" in text and "J" in text

    def test_zero_width_timeline(self):
        """All events at t=0 with zero duration must not divide by zero
        or paint outside the row."""
        t = Timeline()
        t.add("iteration", 0, 0, 0)
        t.add("checkpoint", None, 0, 0)
        text = t.render(width=16)
        row = text.splitlines()[0]
        assert row.startswith("worker 0: [")
        assert len(row) == len("worker 0: [") + 16 + 1

    def test_negative_start_is_clamped_not_wrapped(self):
        """A malformed negative start must not index from the end of the
        row buffer (Python negative indexing) — regression test."""
        t = Timeline()
        t.add("iteration", 0, -50, 2)
        t.add("iteration", 0, 90, 100)
        text = t.render(width=10)
        row = text.splitlines()[0]
        cells = row[len("worker 0: ["):-1]
        assert cells[0] == "="      # clamped to column 0
        assert len(cells) == 10

    def test_long_label_does_not_widen_rows(self):
        t = Timeline()
        t.add("iteration", 0, 0, 10, "i=" + "9" * 500)
        t.add("checkpoint", None, 5, 6, "x" * 500)
        lines = t.render(width=30).splitlines()
        for line in lines[:-1]:  # worker row + events row, not the legend
            assert len(line) == len("worker 0: [") + 30 + 1

    def test_event_past_t_end_is_clamped(self):
        t = Timeline()
        t.add("iteration", 0, 5, 10)
        # start beyond every end (malformed): clamp into the last column.
        t.add("misspec", 0, 99, 4)
        text = t.render(width=12)
        assert "X" in text.splitlines()[0]

    def test_events_are_recorded_in_order(self):
        t = self._sample()
        kinds = [e.kind for e in t.events]
        assert kinds == ["spawn", "iteration", "iteration", "checkpoint",
                         "misspec", "recovery", "join"]

    def test_event_fields(self):
        e = TimelineEvent("iteration", 2, 5, 9, "i=7")
        assert (e.worker, e.start, e.end, e.label) == (2, 5, 9, "i=7")
