"""Unit tests for the process backend plumbing: backend selection,
executor factory, child-failure and timeout handling, and the trace
integration that re-homes worker events into per-process lanes.
"""

import json
import os

import pytest

from repro.obs.trace import SIM_PID, WALL_PID, WORKER_PID_BASE, Tracer
from repro.parallel.backend import (
    BACKEND_ENV,
    BACKEND_NAMES,
    BackendError,
    make_executor,
    resolve_backend_name,
)
from repro.parallel.executor import DOALLExecutor
from repro.parallel.process_backend import ProcessDOALLExecutor

from helpers import prepared_counter_program


class TestBackendResolution:
    def test_default_is_simulated(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend_name() == "simulated"
        assert resolve_backend_name(None) == "simulated"

    def test_explicit_name_wins(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "process")
        assert resolve_backend_name("simulated") == "simulated"

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "process")
        assert resolve_backend_name() == "process"

    def test_unknown_name_rejected(self):
        with pytest.raises(BackendError, match="unknown backend"):
            resolve_backend_name("threads")

    def test_unknown_env_rejected(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "gpu")
        with pytest.raises(BackendError, match="unknown backend"):
            resolve_backend_name()

    def test_backend_error_is_value_error(self):
        # argparse and callers catching ValueError keep working.
        assert issubclass(BackendError, ValueError)

    def test_names_cover_all_backends(self):
        assert set(BACKEND_NAMES) == {"simulated", "process", "pool"}


class TestMakeExecutor:
    def test_factory_dispatch(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        prog = prepared_counter_program(8)
        sim = make_executor(None, prog.module, prog.plan, workers=2)
        assert isinstance(sim, DOALLExecutor)
        assert sim.backend_name == "simulated"
        proc = make_executor("process", prog.module, prog.plan, workers=2)
        assert isinstance(proc, ProcessDOALLExecutor)
        assert proc.backend_name == "process"

    def test_env_dispatch(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "process")
        prog = prepared_counter_program(8)
        ex = make_executor(None, prog.module, prog.plan, workers=2)
        assert isinstance(ex, ProcessDOALLExecutor)

    def test_epoch_timeout_plumbing(self):
        prog = prepared_counter_program(8)
        ex = make_executor("process", prog.module, prog.plan, workers=2,
                           epoch_timeout=12.5)
        assert ex.epoch_timeout == 12.5


class TestChildFailureHandling:
    def test_child_internal_error_surfaces_traceback(self):
        """An internal error inside a forked child must abort the run
        with the child's traceback, not hang or silently squash."""
        prog = prepared_counter_program(8)
        ex = ProcessDOALLExecutor(prog.module, prog.plan, workers=2)

        def boom(worker, i, init):
            raise ZeroDivisionError("synthetic child crash")

        ex._execute_iteration = boom
        with pytest.raises(RuntimeError, match="synthetic child crash"):
            ex.run("main", prog.ref_args)

    def test_wedged_child_hits_deadline(self):
        """A child that never reports trips the epoch deadline; the
        parent kills the pool and raises instead of hanging forever."""
        prog = prepared_counter_program(8)
        ex = ProcessDOALLExecutor(prog.module, prog.plan, workers=2,
                                  epoch_timeout=1.0)

        def wedge(worker, i, init):
            # Child-side only: the parent never calls _execute_iteration
            # on the process backend's speculative path.
            os.read(os.pipe()[0], 1)  # blocks forever

        ex._execute_iteration = wedge
        with pytest.raises(RuntimeError, match="did not report"):
            ex.run("main", prog.ref_args)


class TestWorkerTraceProcesses:
    def test_absorb_worker_events_rehomes_pids(self):
        tracer = Tracer()
        tracer.enable()
        try:
            with tracer.span("backend.worker_epoch", cat="backend", tid=3):
                pass
            shipped = [dict(ev) for ev in tracer.events]
            tracer.absorb_worker_events(2, shipped)
            absorbed = [ev for ev in tracer.events
                        if ev.get("pid", None) == WORKER_PID_BASE + 2]
            assert absorbed, "worker events must land in the worker pid"
        finally:
            tracer.disable()

    def test_absorb_noop_when_disabled(self):
        tracer = Tracer()
        before = len(tracer.events)
        tracer.absorb_worker_events(0, [{"name": "x", "ph": "X"}])
        assert len(tracer.events) == before

    def test_chrome_export_names_worker_processes(self):
        tracer = Tracer()
        tracer.enable()
        try:
            with tracer.span("backend.worker_epoch", cat="backend", tid=1):
                pass
            tracer.absorb_worker_events(
                0, [dict(ev) for ev in tracer.events])
            events = tracer.chrome_events()
        finally:
            tracer.disable()
        names = {
            (ev["pid"], ev["args"]["name"])
            for ev in events
            if ev.get("ph") == "M" and ev.get("name") == "process_name"
        }
        assert (WORKER_PID_BASE, "worker process 0") in names
        # The export stays valid JSON.
        json.dumps(events)


class TestProcessBackendTraceIntegration:
    def test_worker_epoch_spans_in_worker_pids(self):
        """An end-to-end traced process-backend run must produce
        backend.worker_epoch spans homed in per-worker trace pids."""
        from repro.obs.trace import TRACER

        prog = prepared_counter_program(16)
        TRACER.enable()
        try:
            prog.execute(workers=2, backend="process")
            worker_pids = {
                ev.get("pid") for ev in TRACER.events
                if ev.get("name") == "backend.worker_epoch"
            }
        finally:
            TRACER.disable()
            TRACER.reset()
        assert worker_pids == {WORKER_PID_BASE, WORKER_PID_BASE + 1}
        assert WALL_PID not in worker_pids and SIM_PID not in worker_pids


class TestWorkerTelemetry:
    """In-worker metrics ship back on the result pipe and merge into the
    parent registry under worker.N.* labels."""

    def test_worker_metrics_merged_after_run(self):
        from repro.obs.metrics import METRICS
        from repro.obs.trace import TRACER

        prog = prepared_counter_program(16)
        TRACER.enable()
        METRICS.reset()
        try:
            prog.execute(workers=2, backend="process")
            snap = METRICS.snapshot()
        finally:
            TRACER.disable()
            TRACER.reset()
            METRICS.reset()
        for wid in (0, 1):
            assert snap[f"worker.{wid}.epoch.slices"]["value"] > 0
            assert snap[f"worker.{wid}.epoch.iterations"]["value"] > 0
            assert snap[f"worker.{wid}.epoch.busy_us"]["value"] > 0
        # Worker totals reconcile with the parent's own accounting: every
        # committed iteration ran in exactly one worker slice.
        shipped = sum(snap[f"worker.{w}.epoch.iterations"]["value"]
                      for w in (0, 1))
        assert shipped == snap["executor.iterations.committed"]["value"]

    def test_no_worker_metrics_when_tracing_off(self):
        from repro.obs.metrics import METRICS
        from repro.obs.trace import TRACER

        TRACER.disable()
        METRICS.reset()
        prog = prepared_counter_program(8)
        prog.execute(workers=2, backend="process")
        assert not any(name.startswith("worker.")
                       for name in METRICS.snapshot())

    def test_double_digit_wid_pid_assignment(self):
        tracer = Tracer()
        tracer.enable()
        try:
            with tracer.span("backend.worker_epoch", cat="backend"):
                pass
            shipped = [dict(ev) for ev in tracer.events]
            tracer.absorb_worker_events(12, shipped)
            pids = {ev["pid"] for ev in tracer.events
                    if ev["name"] == "backend.worker_epoch"
                    and ev is not tracer.events[0]}
        finally:
            tracer.disable()
        assert WORKER_PID_BASE + 12 in pids

    def test_absorbed_events_preserve_order(self):
        tracer = Tracer()
        tracer.enable()
        try:
            shipped = []
            for i in range(3):
                with tracer.span(f"w{i}", cat="backend"):
                    pass
            shipped = [dict(ev) for ev in tracer.events]
            tracer.reset()
            tracer.enable()
            tracer.absorb_worker_events(0, shipped)
            names = [ev["name"] for ev in tracer.events]
        finally:
            tracer.disable()
        assert names == ["w0", "w1", "w2"]


class TestWorkerTelemetrySurvivesSigkill:
    def test_partial_epoch_telemetry_survives_worker_death(
            self, monkeypatch):
        """When one worker is SIGKILLed mid-epoch, telemetry shipped by
        the workers that did report must survive the epoch failure."""
        import signal
        import time as time_mod

        from repro.obs.metrics import METRICS
        from repro.obs.trace import TRACER

        orig = ProcessDOALLExecutor._child_slice

        def killer(self, worker, frame, epoch_start, epoch_end, init):
            report = orig(self, worker, frame, epoch_start, epoch_end, init)
            if worker.wid == 1:
                # Let worker 0's frame land first, then die unreported.
                time_mod.sleep(0.5)
                os.kill(os.getpid(), signal.SIGKILL)
            return report

        monkeypatch.setattr(ProcessDOALLExecutor, "_child_slice", killer)
        prog = prepared_counter_program(16)
        TRACER.enable()
        METRICS.reset()
        try:
            with pytest.raises(RuntimeError,
                               match="exited without reporting"):
                prog.execute(workers=2, backend="process")
            snap = METRICS.snapshot()
            worker_pids = {
                ev.get("pid") for ev in TRACER.events
                if ev.get("name") == "backend.worker_epoch"
            }
        finally:
            TRACER.disable()
            TRACER.reset()
            METRICS.reset()
        # Worker 0 reported before the epoch collapsed: its spans and
        # metrics were absorbed.  Worker 1 died unreported.
        assert WORKER_PID_BASE in worker_pids
        assert snap["worker.0.epoch.slices"]["value"] > 0
        assert "worker.1.epoch.slices" not in snap
