"""The end-to-end pipeline API and the loop tracker."""

import pytest

from repro.bench.pipeline import prepare, run_sequential
from repro.transform import SelectionError

SRC = """
int scratch[16];
int out[64];
int main(int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < 16; j++) { scratch[j] = i ^ j; }
        int acc = 0;
        for (int j = 0; j < 16; j++) { acc += scratch[j]; }
        out[i] = acc;
    }
    printf("%d %d\\n", out[0], out[5]);
    return 0;
}
"""


class TestPrepare:
    def test_train_ref_split(self):
        prog = prepare(SRC, "p", args=(8,), ref_args=(32,))
        assert prog.train_args == (8,)
        assert prog.ref_args == (32,)
        # Sequential baseline measured on ref input.
        seq_small = run_sequential(SRC, "p", args=(8,))
        assert prog.sequential.cycles > seq_small.cycles

    def test_execute_defaults_to_ref(self):
        prog = prepare(SRC, "p", args=(8,), ref_args=(32,))
        result = prog.execute(workers=4)
        assert result.output == prog.sequential.output

    def test_execute_override_args(self):
        prog = prepare(SRC, "p", args=(8,), ref_args=(32,))
        result = prog.execute(workers=4, args=(8,))
        small = run_sequential(SRC, "p", args=(8,))
        assert result.output == small.output

    def test_rejected_candidates_surface_reasons(self):
        bad = """
        int state;
        int out[64];
        int main(int n) {
            for (int i = 0; i < n; i++) {
                out[i] = state;
                state = state + i;
                for (int j = 0; j < 20; j++) { out[i] = out[i] * 3 + j; }
            }
            printf("%d\\n", out[0]);
            return 0;
        }
        """
        with pytest.raises(SelectionError) as info:
            prepare(bad, "bad", args=(24,))
        assert info.value.reasons

    def test_speedup_helper(self):
        prog = prepare(SRC, "p", args=(48,))
        result = prog.execute(workers=8)
        assert prog.speedup(result) == pytest.approx(
            prog.sequential.cycles / result.total_wall_cycles)


class TestSequentialRunner:
    def test_deterministic(self):
        a = run_sequential(SRC, "p", args=(16,))
        b = run_sequential(SRC, "p", args=(16,))
        assert a.cycles == b.cycles
        assert a.output == b.output


class TestLoopTrackerEdgeCases:
    def test_loop_exited_by_return(self):
        """A return from inside a loop must unwind the tracker stack."""
        from repro.profiling import profile_execution_time
        from repro.frontend import compile_minic

        src = """
        int find(int needle) {
            for (int i = 0; i < 100; i++) {
                if (i == needle) { return i; }
            }
            return -1;
        }
        int main() {
            int acc = 0;
            for (int k = 0; k < 10; k++) { acc += find(k * 3); }
            return acc;
        }
        """
        mod = compile_minic(src)
        report = profile_execution_time(mod)
        recs = {r.ref.header: r for r in report.records}
        # find's loop entered 10 times despite always exiting via return.
        assert recs["for.cond"].invocations == 10

    def test_nested_invocation_counts(self):
        from repro.profiling import profile_execution_time
        from repro.frontend import compile_minic

        src = """
        int a[4];
        int main() {
            for (int i = 0; i < 6; i++) {
                for (int j = 0; j < 4; j++) { a[j] += i; }
            }
            return a[0];
        }
        """
        mod = compile_minic(src)
        report = profile_execution_time(mod)
        recs = {r.ref.header: r for r in report.records}
        assert recs["for.cond.1"].invocations == 6
        assert recs["for.cond.1"].iterations == 24
        assert recs["for.cond.1"].avg_trip_count == pytest.approx(4.0)
