"""Mod/Ref summaries and call-graph analysis."""

import pytest

from repro.analysis import CallGraph, ModRefAnalysis
from repro.frontend import compile_minic

SRC = """
int g[8];
int h[8];
long total;

void writer(int i) { g[i % 8] = i; }
int reader(int i) { return h[i % 8]; }
void outer(int i) { writer(i); total += reader(i); }
void noisy(int i) { printf("%d", i); }
int pure(int i) { return i * 2 + 1; }
int recurse(int n) { if (n <= 0) { return 0; } return recurse(n - 1) + 1; }

int main() { outer(1); noisy(2); return pure(3) + recurse(4); }
"""


@pytest.fixture(scope="module")
def env():
    mod = compile_minic(SRC)
    return mod, ModRefAnalysis(mod), CallGraph(mod)


class TestModRef:
    def test_writer_mods_g_only(self, env):
        mod, mr, _ = env
        s = mr.summary(mod.function_named("writer"))
        assert {o.name for o in s.mod.objects} == {"g"}
        assert not s.ref.objects and not s.ref.is_top

    def test_reader_refs_h(self, env):
        mod, mr, _ = env
        s = mr.summary(mod.function_named("reader"))
        assert {o.name for o in s.ref.objects} == {"h"}
        assert not s.mod.objects

    def test_transitive_effects(self, env):
        mod, mr, _ = env
        s = mr.summary(mod.function_named("outer"))
        assert {"g", "total"} <= {o.name for o in s.mod.objects}
        assert {"h", "total"} <= {o.name for o in s.ref.objects}

    def test_io_propagates(self, env):
        mod, mr, _ = env
        assert mr.summary(mod.function_named("noisy")).does_io
        assert mr.summary(mod.function_named("main")).does_io
        assert not mr.summary(mod.function_named("outer")).does_io

    def test_pure_function_is_clean(self, env):
        mod, mr, _ = env
        s = mr.summary(mod.function_named("pure"))
        assert not s.mod.objects and not s.ref.objects and not s.does_io

    def test_prng_is_stateful(self):
        mod = compile_minic(
            "int main() { rand_seed(1); return (int)rand_int(); }")
        mr = ModRefAnalysis(mod)
        s = mr.summary(mod.function_named("rand_int"))
        assert s.mod.objects  # touches the hidden PRNG state


class TestCallGraph:
    def test_direct_callees(self, env):
        mod, _, cg = env
        outer = mod.function_named("outer")
        names = {f.name for f in cg.callees[outer]}
        assert {"writer", "reader"} <= names

    def test_transitive(self, env):
        mod, _, cg = env
        main = mod.function_named("main")
        names = {f.name for f in cg.transitive_callees(main)}
        assert {"outer", "writer", "reader", "pure", "recurse"} <= names

    def test_recursion_detected(self, env):
        mod, _, cg = env
        assert cg.is_recursive(mod.function_named("recurse"))
        assert not cg.is_recursive(mod.function_named("pure"))
