"""Parallelization-as-a-service: serializers, job store, scheduler
batching/caching, the HTTP tier, the CLI entry points, and schema
validation of the service payloads (docs/SERVICE.md)."""

import json
import threading
import time
import urllib.request

import pytest

from repro.__main__ import main
from repro.obs import schema
from repro.obs.metrics import (
    METRICS,
    MetricsRegistry,
    metric_sort_key,
    render_prometheus,
    split_labeled_metric,
)
from repro.obs.trace import TRACER, Tracer
from repro.service import (
    JobStore,
    QueueFull,
    STATE_DONE,
    STATE_FAILED,
    STATE_QUEUED,
    ServiceApp,
    ServiceClient,
    ServiceError,
    ValidationError,
    fingerprint_source,
    parse_submit,
)
from repro.service.app import (
    SERVE_PORT_ENV,
    SERVE_QUEUE_ENV,
    resolve_queue_depth,
    resolve_serve_port,
    workloads_payload,
)

SRC = """
int scratch[8];
int out[64];
int main(int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < 8; j++) { scratch[j] = i + j; }
        int acc = 0;
        for (int r = 0; r < 5; r++) {
            for (int j = 0; j < 8; j++) { acc += scratch[j]; }
        }
        out[i] = acc;
    }
    printf("%d\\n", out[2]);
    return 0;
}
"""

BAD_SRC = """
int state;
int out[64];
int main(int n) {
    for (int i = 0; i < n; i++) {
        out[i] = state;
        state = state + i;
        for (int j = 0; j < 20; j++) { out[i] = out[i] * 3 + j; }
    }
    printf("%d\\n", out[0]);
    return 0;
}
"""

# Train input (carry=0) satisfies privatization; ref input (carry=1)
# creates a true loop-carried flow the runtime must catch and recover
# (same program as tests/test_genuine_misspeculation.py).
MISSPEC_SRC = """
int state[8];
int out[128];
int main(int n, int carry) {
    for (int i = 0; i < n; i++) {
        if (carry && i > 0) {
            out[i] = state[0];
        } else {
            out[i] = i;
        }
        state[0] = i * 7;
        for (int j = 0; j < 25; j++) { out[i] += j; }
    }
    printf("%d %d %d\\n", out[1], out[5], out[n-1]);
    return 0;
}
"""


@pytest.fixture(autouse=True)
def _clean_obs(tmp_path, monkeypatch):
    """Private scratch caches + clean global obs state per test."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_ADAPT_DIR", str(tmp_path / "adapt"))
    TRACER.disable()
    TRACER.reset()
    METRICS.reset()
    yield
    TRACER.disable()
    TRACER.reset()
    METRICS.reset()


@pytest.fixture
def app(tmp_path):
    """A started service on an ephemeral port with a private registry."""
    registry = MetricsRegistry()
    app = ServiceApp(port=0, registry=registry, tracer=Tracer(),
                     spool_dir=str(tmp_path / "spool"))
    with app:
        yield app


def _client(app: ServiceApp) -> ServiceClient:
    return ServiceClient(app.url, timeout=30.0)


class TestParseSubmit:
    def test_workload_defaults_to_ref(self):
        spec = parse_submit({"workload": "dijkstra"})
        from repro.workloads import BY_NAME

        w = BY_NAME["dijkstra"]
        assert spec.args == w.ref
        assert spec.train_args == w.train
        assert spec.source == w.source

    def test_small_uses_train(self):
        spec = parse_submit({"workload": "dijkstra", "small": True})
        from repro.workloads import BY_NAME

        assert spec.args == BY_NAME["dijkstra"].train

    def test_inline_source(self):
        spec = parse_submit({"source": SRC, "name": "mine",
                             "args": [24], "workers": 2})
        assert spec.name == "mine"
        assert spec.args == (24,)
        assert spec.workers == 2

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValidationError, match="unknown field"):
            parse_submit({"workload": "dijkstra", "wrokers": 3})

    def test_requires_exactly_one_of_workload_source(self):
        with pytest.raises(ValidationError, match="exactly one"):
            parse_submit({})
        with pytest.raises(ValidationError, match="exactly one"):
            parse_submit({"workload": "dijkstra", "source": SRC})

    def test_unknown_workload_lists_available(self):
        with pytest.raises(ValidationError, match="dijkstra"):
            parse_submit({"workload": "nope"})

    def test_collects_all_errors(self):
        try:
            parse_submit({"workload": "nope", "workers": 0,
                          "args": ["x"], "bogus": 1})
        except ValidationError as e:
            joined = "\n".join(e.errors)
            assert len(e.errors) >= 4
            assert "workers" in joined
            assert "args" in joined
            assert "bogus" in joined
        else:
            pytest.fail("expected ValidationError")

    def test_pool_workers_requires_pool_backend(self):
        with pytest.raises(ValidationError, match="pool backend"):
            parse_submit({"workload": "dijkstra", "pool_workers": 2})
        spec = parse_submit({"workload": "dijkstra", "backend": "pool",
                             "pool_workers": 2})
        assert spec.pool_workers == 2

    def test_cache_key_ignores_trace_only(self):
        base = parse_submit({"workload": "dijkstra"})
        traced = parse_submit({"workload": "dijkstra", "trace": True})
        other = parse_submit({"workload": "dijkstra", "workers": 5})
        fp = "f" * 16
        assert base.cache_key(fp) == traced.cache_key(fp)
        assert base.cache_key(fp) != other.cache_key(fp)
        assert base.cache_key(fp) != base.cache_key("e" * 16)

    def test_fingerprint_is_content_keyed(self):
        a = fingerprint_source(SRC, "a")
        b = fingerprint_source(SRC, "a")
        c = fingerprint_source(BAD_SRC, "a")
        assert a == b  # deterministic for identical source
        assert a != c


class TestJobStore:
    def _spec(self, **over):
        payload = {"source": SRC, "name": "t", "args": [16]}
        payload.update(over)
        return parse_submit(payload)

    def test_queue_full_raises_with_retry_after(self):
        store = JobStore(queue_depth=2, registry=MetricsRegistry())
        store.submit(self._spec(), "fp")
        store.submit(self._spec(workers=2), "fp")
        with pytest.raises(QueueFull) as exc:
            store.submit(self._spec(workers=3), "fp")
        assert exc.value.retry_after_s >= 1.0
        assert store.registry.counter("service.queue.rejected").value == 1

    def test_cache_hit_skips_queue(self):
        store = JobStore(queue_depth=1, registry=MetricsRegistry())
        job = store.submit(self._spec(), "fp")
        [claimed] = store.take_queued()
        store.finish(claimed, STATE_DONE, result={"output_matches": True})
        # The queue slot is free again AND the identical resubmission is
        # answered from the result cache without consuming it.
        hit = store.submit(self._spec(), "fp")
        assert hit.cache_hit and hit.state == STATE_DONE
        assert hit.result["cached_from"] == job.id
        assert store.registry.counter("service.cache_hits").value == 1

    def test_failed_jobs_are_not_cached(self):
        store = JobStore(registry=MetricsRegistry())
        store.submit(self._spec(), "fp")
        [claimed] = store.take_queued()
        store.finish(claimed, STATE_FAILED, error="boom")
        again = store.submit(self._spec(), "fp")
        assert not again.cache_hit and again.state == STATE_QUEUED

    def test_retention_evicts_oldest_and_its_metrics(self):
        registry = MetricsRegistry()
        store = JobStore(retain=2, registry=registry)
        ids = []
        for workers in (1, 2, 3):
            store.submit(self._spec(workers=workers), "fp")
            [claimed] = store.take_queued()
            store.finish(claimed, STATE_DONE,
                         result={"output_matches": True})
            ids.append(claimed.id)
        assert store.get(ids[0]) is None
        assert store.get(ids[1]) is not None
        names = set(registry.snapshot())
        assert not any(n.startswith(f"job.{ids[0]}.") for n in names)
        assert any(n.startswith(f"job.{ids[1]}.") for n in names)

    def test_counts_and_fingerprint_payload(self):
        store = JobStore(registry=MetricsRegistry())
        store.submit(self._spec(), "fp")
        counts = store.counts()
        assert counts[STATE_QUEUED] == 1
        payload = store.fingerprint_payload()
        assert payload["fingerprints"]["fp"]["jobs"] == 1
        assert payload["queue_capacity"] == store.queue_depth


class TestServiceEndToEnd:
    def test_batching_warm_start_and_cache_hit(self, app):
        client = _client(app)
        # Two jobs sharing a fingerprint, different knobs: the second
        # must ride the resident prepared program (warm start).
        j1 = client.submit({"source": SRC, "name": "p", "args": [24],
                            "workers": 2})
        j2 = client.submit({"source": SRC, "name": "p", "args": [24],
                            "workers": 3})
        assert j1["fingerprint"] == j2["fingerprint"]
        j1 = client.wait(j1["id"])
        j2 = client.wait(j2["id"])
        assert j1["state"] == "done" and j2["state"] == "done"
        assert not j1["warm"] and j2["warm"]
        assert j1["result"]["output_matches"]
        assert j1["result"]["table1"]["speedup"] > 0
        assert j1["result"]["table3"]["private_sites"] >= 1
        r = app.registry
        assert r.counter("service.prepare.cold").value == 1
        assert r.counter("service.prepare.warm").value == 1

        # Identical resubmission: served from the warm result cache.
        j3 = client.submit({"source": SRC, "name": "p", "args": [24],
                            "workers": 2})
        assert j3["cache_hit"] and j3["state"] == "done"
        assert j3["result"]["cached_from"] == j1["id"]
        assert r.counter("service.cache_hits").value == 1

        fp = client.fingerprints()
        stats = fp["fingerprints"][j1["fingerprint"]]
        assert stats["jobs"] == 3
        assert stats["cache_hits"] == 1
        assert stats["warm_runs"] == 1

    def test_misspeculating_job_is_done_with_forensics(self, app):
        client = _client(app)
        job = client.submit({"source": MISSPEC_SRC, "name": "genuine",
                             "train_args": [24, 0], "args": [24, 1],
                             "workers": 4})
        job = client.wait(job["id"])
        # Caught-and-recovered misspeculation is a *successful* job: the
        # output matched the sequential baseline after recovery.
        assert job["state"] == "done"
        result = job["result"]
        assert result["output_matches"]
        assert result["misspeculations"] > 0
        assert result["genuine_misspeculations"] > 0
        assert result["recoveries"] > 0
        assert result["squashed_iterations"] > 0
        forensics = result["forensics"]
        assert forensics["total_diagnoses"] > 0
        kinds = {d["kind"] for d in forensics["diagnoses"]}
        assert kinds & {"privacy", "control"}

    def test_unparallelizable_job_fails_with_reasons(self, app):
        client = _client(app)
        job = client.submit({"source": BAD_SRC, "name": "bad",
                             "args": [24]})
        job = client.wait(job["id"])
        assert job["state"] == "failed"
        assert "no parallelizable loop" in job["error"]
        assert app.registry.counter("service.jobs.failed").value == 1

    def test_injected_misspec_counts_surface(self, app):
        client = _client(app)
        job = client.submit({"source": SRC, "name": "inj", "args": [24],
                             "workers": 2, "misspec_period": 7,
                             "misspec_burst": 10})
        job = client.wait(job["id"])
        assert job["state"] == "done"
        assert job["result"]["misspeculations"] > 0
        assert job["result"]["genuine_misspeculations"] == 0

    def test_trace_artifact_round_trip(self, tmp_path):
        # Pipeline spans land on the global TRACER, so the trace test
        # runs the server in its production wiring (tracer=None).
        with ServiceApp(port=0, registry=MetricsRegistry(),
                        spool_dir=str(tmp_path / "spool")) as app:
            self._trace_round_trip(app, tmp_path)

    def _trace_round_trip(self, app, tmp_path):
        client = _client(app)
        job = client.submit({"source": SRC, "name": "traced",
                             "args": [24], "workers": 2, "trace": True})
        job = client.wait(job["id"])
        assert job["state"] == "done" and job["has_trace"]
        text = client.trace(job["id"])
        lines = [json.loads(line) for line in text.splitlines() if line]
        assert any(ev.get("kind") == "meta" for ev in lines)
        assert any(ev.get("name") == "pipeline.execute" for ev in lines)
        # The artifact is the documented JSONL trace schema.
        path = tmp_path / "job.trace.jsonl"
        path.write_text(text)
        report = schema.validate_jsonl(str(path))
        assert report["errors"] == []
        # Traced runs are not cache-filled: the resubmission runs fresh.
        again = client.submit({"source": SRC, "name": "traced",
                               "args": [24], "workers": 2, "trace": True})
        assert not again["cache_hit"]
        client.wait(again["id"])

    def test_validation_errors_are_http_400(self, app):
        client = _client(app)
        with pytest.raises(ServiceError) as exc:
            client.submit({"workload": "nope", "workers": 0})
        assert exc.value.status == 400
        assert any("workers" in e for e in exc.value.errors)

    def test_uncompilable_source_is_http_400(self, app):
        client = _client(app)
        with pytest.raises(ServiceError) as exc:
            client.submit({"source": "int main( {", "name": "broken"})
        assert exc.value.status == 400
        assert "compile" in str(exc.value)

    def test_unknown_job_is_http_404(self, app):
        client = _client(app)
        with pytest.raises(ServiceError) as exc:
            client.job("j999")
        assert exc.value.status == 404
        with pytest.raises(ServiceError) as exc:
            client.trace("j999")
        assert exc.value.status == 404

    def test_workloads_and_health_endpoints(self, app):
        client = _client(app)
        names = {w["name"] for w in client.workloads()}
        assert {"dijkstra", "enc_md5"} <= names
        health = client.health()
        assert health["status"] == "ok"
        assert health["scheduler"] == "running"
        assert set(health["jobs"]) == {"queued", "running", "done",
                                       "failed", "misspeculated"}


class TestBackpressure:
    def test_queue_full_is_429_with_retry_after(self, tmp_path):
        # Unstarted app: the scheduler never drains, so the queue fills.
        app = ServiceApp(port=0, queue_depth=1,
                         registry=MetricsRegistry(), tracer=Tracer(),
                         spool_dir=str(tmp_path / "spool"))
        status, body, headers = app.handle_submit(
            {"source": SRC, "name": "q", "args": [16]})
        assert status == 202
        status, body, headers = app.handle_submit(
            {"source": SRC, "name": "q", "args": [16], "workers": 9})
        assert status == 429
        assert int(headers["Retry-After"]) >= 1
        assert "queue is full" in body["error"]

    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv(SERVE_QUEUE_ENV, "7")
        assert resolve_queue_depth(None) == 7
        assert resolve_queue_depth(3) == 3
        monkeypatch.setenv(SERVE_QUEUE_ENV, "zero")
        with pytest.raises(ValueError, match="integer"):
            resolve_queue_depth(None)
        monkeypatch.setenv(SERVE_PORT_ENV, "18222")
        assert resolve_serve_port(None) == 18222
        assert resolve_serve_port(1234) == 1234
        monkeypatch.setenv(SERVE_PORT_ENV, "eighty")
        with pytest.raises(ValueError, match="integer"):
            resolve_serve_port(None)
        monkeypatch.delenv(SERVE_PORT_ENV)
        assert resolve_serve_port(None) == 8517


class TestConcurrentPolling:
    def test_no_torn_envelopes_and_clean_shutdown(self, tmp_path):
        """Hammer /metrics, /metrics.prom and /jobs/<id> from many
        threads while jobs mutate the registry; every response must be a
        complete, parseable envelope, and shutdown must leave no service
        threads behind."""
        registry = MetricsRegistry()
        app = ServiceApp(port=0, registry=registry, tracer=Tracer(),
                         spool_dir=str(tmp_path / "spool"))
        errors = []
        stop = threading.Event()

        def hammer(path, check):
            while not stop.is_set():
                try:
                    with urllib.request.urlopen(app.url + path,
                                                timeout=5) as resp:
                        check(resp.read())
                except Exception as e:  # noqa: BLE001 - collected below
                    errors.append(f"{path}: {e!r}")
                    return

        def check_metrics(raw):
            data = json.loads(raw)
            assert set(data) >= {"status_format", "generated_unix",
                                 "run", "metrics"}, "torn /metrics"

        def check_job(raw):
            data = json.loads(raw)
            job = data["job"]
            assert set(job) >= {"id", "state", "knobs", "result"}, \
                "torn job payload"

        def check_prom(raw):
            text = raw.decode()
            for line in text.splitlines():
                assert line.startswith("#") or " " in line, "torn prom"

        with app:
            client = _client(app)
            first = client.submit({"source": SRC, "name": "c",
                                   "args": [24], "workers": 2})
            threads = [
                threading.Thread(target=hammer, args=("/metrics",
                                                      check_metrics)),
                threading.Thread(target=hammer, args=("/metrics",
                                                      check_metrics)),
                threading.Thread(target=hammer, args=("/metrics.prom",
                                                      check_prom)),
                threading.Thread(target=hammer,
                                 args=(f"/jobs/{first['id']}", check_job)),
                threading.Thread(target=hammer,
                                 args=(f"/jobs/{first['id']}", check_job)),
            ]
            for t in threads:
                t.start()
            # Mutate the registry under the pollers: several jobs, some
            # warm, one cache hit.
            for workers in (3, 4, 2):
                client.submit({"source": SRC, "name": "c", "args": [24],
                               "workers": workers})
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                counts = app.store.counts()
                if counts["queued"] == counts["running"] == 0:
                    break
                time.sleep(0.05)
            stop.set()
            for t in threads:
                t.join(timeout=10)
            assert errors == []
        # Clean shutdown: no service/scheduler threads left.
        for _ in range(100):
            leaked = [t.name for t in threading.enumerate()
                      if t.name.startswith("repro-serve")
                      or t.name.startswith("repro-service")]
            if not leaked:
                break
            time.sleep(0.05)
        assert leaked == []
        assert not app.scheduler.alive


class TestServiceMetricsSchema:
    def _served_payloads(self, app, client):
        j = client.submit({"source": SRC, "name": "m", "args": [24],
                           "workers": 2})
        client.wait(j["id"])
        metrics = json.loads(
            urllib.request.urlopen(app.url + "/metrics",
                                   timeout=5).read())
        prom = urllib.request.urlopen(app.url + "/metrics.prom",
                                      timeout=5).read().decode()
        job = json.loads(
            urllib.request.urlopen(app.url + f"/jobs/{j['id']}",
                                   timeout=5).read())
        return metrics, prom, job

    def test_live_payloads_validate(self, app, tmp_path):
        metrics, prom, job = self._served_payloads(app, _client(app))
        names = set(metrics["metrics"])
        assert "service.jobs.submitted" in names
        assert "service.queue.depth" in names
        assert "service.job.latency_us" in names
        assert any(n.startswith("job.j1.") for n in names)

        mpath = tmp_path / "metrics.json"
        mpath.write_text(json.dumps(metrics))
        report = schema.validate_metrics(str(mpath))
        assert report["errors"] == []

        ppath = tmp_path / "metrics.prom"
        ppath.write_text(prom)
        report = schema.validate_prom(str(ppath))
        assert report["errors"] == []
        assert 'job="j1"' in prom

        jpath = tmp_path / "job.json"
        jpath.write_text(json.dumps(job))
        report = schema.validate_job(str(jpath))
        assert report["errors"] == []

    def test_job_schema_rejects_bad_payloads(self, tmp_path):
        bad = {"service_format": 1, "generated_unix": 1.0,
               "job": {"id": "job-1", "state": "sideways",
                       "args": ["x"], "train_args": [], "knobs": {},
                       "cache_hit": False, "warm": False,
                       "fingerprint": ""}}
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(bad))
        report = schema.validate_job(str(path))
        joined = "\n".join(report["errors"])
        assert "does not match j<N>" in joined
        assert "unknown job state" in joined
        assert "fingerprint" in joined

    def test_metrics_schema_flags_bad_job_names(self, tmp_path):
        payload = {"status_format": 1, "generated_unix": 1.0, "run": {},
                   "metrics": {
                       "job.banana.latency_us":
                           {"type": "gauge", "value": 1},
                       "job.j3.latency_us":
                           {"type": "gauge", "value": 1},
                   }}
        path = tmp_path / "m.json"
        path.write_text(json.dumps(payload))
        report = schema.validate_metrics(str(path))
        joined = "\n".join(report["errors"])
        assert "banana" in joined
        assert "j3" not in joined

    def test_sort_key_orders_job_ids_numerically(self):
        names = ["job.j10.latency_us", "job.j2.latency_us",
                 "service.batches", "worker.10.busy", "worker.2.busy"]
        ordered = sorted(names, key=metric_sort_key)
        assert ordered.index("job.j2.latency_us") \
            < ordered.index("job.j10.latency_us")
        assert ordered.index("worker.2.busy") \
            < ordered.index("worker.10.busy")

    def test_split_labeled_metric(self):
        assert split_labeled_metric("worker.3.busy") == \
            ("busy", ("worker", "3"))
        assert split_labeled_metric("job.j7.latency_us") == \
            ("latency_us", ("job", "j7"))
        assert split_labeled_metric("service.batches") == \
            ("service.batches", None)

    def test_registry_remove(self):
        r = MetricsRegistry()
        r.counter("job.j1.a").inc()
        r.gauge("job.j1.b").set(2)
        r.counter("job.j10.a").inc()
        assert r.remove("job.j1.") == 2
        assert set(r.snapshot()) == {"job.j10.a"}

    def test_prometheus_job_label_folding(self):
        r = MetricsRegistry()
        r.gauge("job.j1.latency_us").set(10)
        r.gauge("job.j2.latency_us").set(20)
        text = render_prometheus(r.snapshot())
        assert 'repro_latency_us{job="j1"} 10' in text
        assert 'repro_latency_us{job="j2"} 20' in text
        assert text.count("# TYPE repro_latency_us gauge") == 1


class TestServiceCLI:
    def test_workloads_json(self, capsys):
        rc = main(["workloads", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["service_format"] == 1
        by_name = {w["name"]: w for w in data["workloads"]}
        assert by_name["dijkstra"]["args_schema"]["arity"] == 3
        assert by_name["dijkstra"]["train_args"] == [24, 16, 7]
        assert "description" in by_name["enc_md5"]

    def test_workloads_json_matches_endpoint(self):
        payload = workloads_payload()
        assert [w["name"] for w in payload["workloads"]] == \
            ["alvinn", "dijkstra", "blackscholes", "swaptions", "enc_md5"]

    def test_submit_and_jobs_against_live_server(self, app, tmp_path,
                                                 capsys):
        src = tmp_path / "prog.c"
        src.write_text(SRC)
        rc = main(["submit", str(src), "--args", "24", "--workers", "2",
                   "--url", app.url])
        out = capsys.readouterr().out
        assert rc == 0
        assert "done" in out and "speedup=" in out

        rc = main(["jobs", "--url", app.url])
        out = capsys.readouterr().out
        assert rc == 0
        assert "j1" in out and "done" in out

        rc = main(["jobs", "j1", "--json", "--url", app.url])
        out = capsys.readouterr().out
        assert rc == 0
        assert json.loads(out)["state"] == "done"

    def test_submit_unknown_workload_is_exit_2(self, capsys):
        rc = main(["submit", "not-a-workload", "--url",
                   "http://127.0.0.1:1"])
        assert rc == 2
        assert "neither a workload" in capsys.readouterr().err

    def test_submit_unreachable_server_is_exit_2(self, capsys):
        rc = main(["submit", "dijkstra", "--small", "--url",
                   "http://127.0.0.1:9", "--timeout", "2"])
        assert rc == 2
        assert "repro serve" in capsys.readouterr().err

    def test_jobs_unreachable_server_is_exit_2(self, capsys):
        rc = main(["jobs", "--url", "http://127.0.0.1:9", "--timeout",
                   "2"])
        assert rc == 2


class TestObservabilityPlane:
    """PR 10: the job lifecycle observability plane — span-id'd job
    traces, labeled latency histograms, live backpressure gauges, and
    the metrics history ring (docs/OBSERVABILITY.md)."""

    def _spec(self, **over):
        payload = {"source": SRC, "name": "t", "args": [16]}
        payload.update(over)
        return parse_submit(payload)

    # -- backpressure gauges ----------------------------------------------

    def test_queue_depth_and_retry_after_gauges(self):
        store = JobStore(queue_depth=4, registry=MetricsRegistry())
        depth = store.registry.gauge("service.queue.depth")
        retry = store.registry.gauge("service.retry_after_s")
        store.submit(self._spec(), "fp")
        store.submit(self._spec(workers=2), "fp")
        assert depth.value == 2
        assert retry.value >= 1.0
        claimed = store.take_queued()
        assert depth.value == 0  # the claim empties the queue
        for job in claimed:
            store.finish(job, STATE_DONE, result={"output_matches": True})
        assert depth.value == 0
        assert retry.value >= 1.0

    # -- labeled latency histograms ---------------------------------------

    def test_finish_observes_outcome_and_tier_labels(self):
        from repro.obs.metrics import labeled

        registry = MetricsRegistry()
        store = JobStore(registry=registry)
        store.submit(self._spec(), "fp")
        [job] = store.take_queued()
        store.finish(job, STATE_DONE, result={"output_matches": True})
        snap = registry.snapshot()
        name = labeled("service.job.total_us", outcome="done", tier="cold")
        assert snap[name]["count"] == 1
        wait = labeled("service.job.queue_wait_us", outcome="done",
                       tier="cold")
        assert snap[wait]["count"] == 1
        # A cache hit of the finished job lands in the cache_hit tier
        # with the submit-side validation time as its total latency.
        store.submit(self._spec(), "fp", validate_s=0.25)
        hit = labeled("service.job.total_us", outcome="done",
                      tier="cache_hit")
        assert registry.snapshot()[hit]["count"] == 1
        assert registry.snapshot()[hit]["p50"] == pytest.approx(0.25e6)

    def test_labeled_histograms_render_and_lint(self, tmp_path):
        from repro.obs.metrics import labeled

        registry = MetricsRegistry()
        store = JobStore(registry=registry)
        store.submit(self._spec(), "fp")
        [job] = store.take_queued()
        store.finish(job, STATE_DONE, result={"output_matches": True})
        text = render_prometheus(registry.snapshot())
        assert ('repro_service_job_total_us_bucket{outcome="done",'
                'tier="cold",le="+Inf"} 1') in text
        p = tmp_path / "m.prom"
        p.write_text(text)
        assert schema.validate_prom(str(p))["errors"] == []

    # -- the traced-job span chain ----------------------------------------

    def _drain_traced(self, tmp_path, specs):
        """Submit the given specs as one claim set and drain it through
        a real scheduler wired to the global TRACER (the production
        configuration); returns the finished jobs."""
        from repro.service.scheduler import Scheduler

        registry = MetricsRegistry()
        store = JobStore(registry=registry)
        sched = Scheduler(store, spool_dir=str(tmp_path / "spool"),
                          registry=registry)
        sched.spool_dir.mkdir(parents=True, exist_ok=True)
        jobs = [store.submit(spec, "fp", validate_s=0.01)
                for spec in specs]
        sched.drain(store.take_queued())
        return jobs

    @staticmethod
    def _events(job):
        with open(job.trace_path) as fh:
            return [json.loads(line) for line in fh if line.strip()]

    @staticmethod
    def _chain(events):
        """The job-level causal chain: service spans plus the epoch
        loop, in recorded order, reduced to structural tuples."""
        keep = ("job", "job.submit", "job.queue_wait", "job.prepare",
                "job.execute", "job.commit", "executor.invocation",
                "executor.epoch", "executor.commit")
        return [(ev["name"], ev["attrs"].get("epoch_start"),
                 ev["attrs"].get("epoch_end"), ev["attrs"].get("outcome"))
                for ev in events
                if ev.get("kind") == "span" and ev.get("pid") == 1
                and ev["name"] in keep]

    def test_span_chain_and_batch_propagation(self, tmp_path):
        spec = {"source": SRC, "name": "p", "args": [24], "workers": 2,
                "trace": True}
        j1, j2 = self._drain_traced(
            tmp_path, [self._spec(**spec), self._spec(**spec)])
        assert j1.state == "done" and j2.state == "done"
        assert not j1.warm and j2.warm  # one batch, shared program
        root_ids = []
        for position, job in enumerate((j1, j2)):
            events = self._events(job)
            names = [ev["name"] for ev in events if ev.get("kind") == "span"]
            for expected in ("job", "job.submit", "job.queue_wait",
                             "job.prepare", "job.execute", "job.commit",
                             "executor.epoch", "executor.commit",
                             "pipeline.execute"):
                assert expected in names, (job.id, expected)
            (root,) = [ev for ev in events if ev.get("name") == "job"
                       and ev.get("kind") == "span"]
            assert root["attrs"]["job"] == job.id
            assert root["attrs"]["state"] == "done"
            root_ids.append(root["attrs"]["span_id"])
            # Every non-meta event in the artifact carries the ambient
            # job + root-span context, including worker-shipped events.
            for ev in events:
                if ev.get("kind") == "meta":
                    continue
                assert ev["attrs"]["job"] == job.id, ev
                assert ev["attrs"]["job_span"] == root["attrs"]["span_id"]
            (batch_ev,) = [ev for ev in events
                           if ev.get("name") == "job.batch"]
            assert batch_ev["attrs"]["batch"] == j1.batch
            assert batch_ev["attrs"]["batch_position"] == position
        # Distinct root spans per job, even within one batch.
        assert root_ids[0] != root_ids[1]
        # The artifacts themselves are schema-clean.
        report = schema.validate_jsonl(str(j2.trace_path))
        assert report["errors"] == []
        # Tracer left disarmed and context-free between jobs.
        assert not TRACER.enabled and TRACER.context == {}

    def test_span_chain_is_identical_across_backends(self, tmp_path):
        base = {"source": SRC, "name": "p", "args": [24], "workers": 2,
                "trace": True}
        sim, pool = self._drain_traced(
            tmp_path, [self._spec(**base),
                       self._spec(backend="pool", **base)])
        assert sim.state == "done" and pool.state == "done"
        sim_chain = self._chain(self._events(sim))
        pool_chain = self._chain(self._events(pool))
        assert sim_chain == pool_chain
        assert ("job.execute", None, None, None) in sim_chain
        assert any(name == "executor.epoch" and outcome == "committed"
                   for name, _, _, outcome in sim_chain)

    def test_tracer_rearms_cleanly_after_failed_traced_run(self, app):
        client = _client(app)
        job = client.submit({"source": BAD_SRC, "name": "bad",
                             "args": [24], "trace": True})
        job = client.wait(job["id"])
        assert job["state"] == "failed"
        tracer = app.scheduler.tracer
        assert not tracer.enabled
        assert tracer.context == {}
        # The next traced job must still produce a clean artifact.
        ok = client.submit({"source": SRC, "name": "ok", "args": [16],
                            "workers": 2, "trace": True})
        ok = client.wait(ok["id"])
        assert ok["state"] == "done" and ok["has_trace"]
        assert not tracer.enabled and tracer.context == {}

    def test_concurrent_trace_fetch_vs_eviction(self, tmp_path):
        """GET /jobs/<id>/trace raced against retention eviction must
        yield complete artifacts or clean 404s — never torn bodies."""
        with ServiceApp(port=0, registry=MetricsRegistry(),
                        tracer=Tracer(), retain=1,
                        spool_dir=str(tmp_path / "spool")) as app:
            client = _client(app)
            first = client.submit({"source": SRC, "name": "p",
                                   "args": [8], "workers": 2,
                                   "trace": True})
            first = client.wait(first["id"])
            assert first["has_trace"]
            stop = threading.Event()
            outcomes = []
            failures = []

            def hammer():
                poll = ServiceClient(app.url, timeout=30.0)
                while not stop.is_set():
                    try:
                        text = poll.trace(first["id"])
                        lines = text.splitlines()
                        if not lines or not all(
                                json.loads(l) for l in lines if l):
                            failures.append("torn artifact")
                        outcomes.append(200)
                    except ServiceError as e:
                        if e.status != 404:
                            failures.append(f"HTTP {e.status}")
                        outcomes.append(404)
                    except Exception as e:  # noqa: BLE001
                        failures.append(repr(e))

            thread = threading.Thread(target=hammer)
            thread.start()
            try:
                # retain=1: each finished job evicts its predecessor.
                for k in (1, 2):
                    job = client.submit({"source": SRC, "name": "p",
                                         "args": [8], "workers": 2 + k,
                                         "trace": True})
                    client.wait(job["id"])
            finally:
                stop.set()
                thread.join(10.0)
            assert failures == []
            assert 404 in outcomes  # the eviction was actually observed

    # -- history ring through the service ---------------------------------

    def test_serve_with_history_ring_feeds_the_dash(self, tmp_path):
        from repro.obs.dash import render_dash_html
        from repro.obs.history import read_history

        ring = tmp_path / "ring"
        app = ServiceApp(port=0, registry=MetricsRegistry(),
                         tracer=Tracer(), spool_dir=str(tmp_path / "spool"),
                         history_dir=str(ring))
        with app:
            assert app.history is not None and app.history.alive
            client = _client(app)
            job = client.submit({"source": SRC, "name": "p", "args": [8],
                                 "workers": 2})
            client.wait(job["id"])
        assert not app.history.alive  # stop() joined the sampler
        records = read_history(str(ring))
        assert records  # stop() flushed at least the final snapshot
        last = records[-1]["metrics"]
        assert last["service.jobs.submitted"]["value"] == 1
        assert last["service.jobs.completed"]["value"] == 1
        assert not any(n.startswith("job.") for n in last)
        page = render_dash_html(records, source=str(ring))
        assert "jobs completed /s" in page
        assert "service.jobs.completed" in page
