"""Genuine (non-injected) misspeculation: the train input satisfies the
privatization criterion, the ref input violates it, and the runtime must
catch the violation and recover to the correct result.

This is the speculation contract of the whole system: profiles are
*predictions*, and every way they can be wrong must be caught by one of
the validation mechanisms (§5.1) — privacy metadata, separation tags,
lifetime counts, value prediction, or control speculation.
"""

import pytest

from repro.bench.pipeline import prepare


def _run(source, name, train, ref, workers=4):
    prog = prepare(source, name, args=train, ref_args=ref)
    result = prog.execute(workers=workers)
    assert result.output == prog.sequential.output, "recovery must be exact"
    return prog, result


class TestPrivacyViolation:
    SRC = """
    int state[8];
    int out[128];
    int main(int n, int carry) {
        for (int i = 0; i < n; i++) {
            if (carry && i > 0) {
                /* reads last iteration's write: a true loop-carried
                   flow dependence, absent on the train input */
                out[i] = state[0];
            } else {
                out[i] = i;
            }
            state[0] = i * 7;
            for (int j = 0; j < 25; j++) { out[i] += j; }
        }
        printf("%d %d %d\\n", out[1], out[5], out[n-1]);
        return 0;
    }
    """

    def test_caught_and_recovered(self):
        prog, result = _run(self.SRC, "privacy_violation",
                            train=(24, 0), ref=(24, 1))
        stats = result.runtime_stats
        assert stats.misspec_count() > 0
        assert stats.recoveries > 0
        kinds = {m.kind for m in stats.misspeculations}
        # Caught by privacy metadata or by the control speculation guard
        # on the unprofiled branch, whichever fires first.
        assert kinds & {"privacy", "control"}

    def test_clean_when_prediction_holds(self):
        prog, result = _run(self.SRC, "privacy_clean",
                            train=(24, 0), ref=(32, 0))
        assert result.runtime_stats.misspec_count() == 0


class TestValuePredictionViolation:
    SRC = """
    struct n { int v; struct n* next; };
    struct n* residue;
    int out[128];
    int main(int n, int leave) {
        for (int i = 0; i < n; i++) {
            struct n* c = (struct n*)malloc(sizeof(struct n));
            c->v = i; c->next = residue; residue = c;
            int acc = 0;
            while (residue != 0 && (leave == 0 || residue->next != 0)) {
                acc += residue->v;
                struct n* d = residue;
                residue = d->next;
                free(d);
            }
            out[i] = acc;
            for (int j = 0; j < 20; j++) { out[i] += j; }
        }
        printf("%d %d\\n", out[2], out[n-1]);
        return 0;
    }
    """

    def test_caught_and_recovered(self):
        """With leave=1 the list keeps one node across iterations: the
        predicted residue==NULL fails (and the node outlives its
        iteration, so lifetime speculation fails too)."""
        prog, result = _run(self.SRC, "vp_violation",
                            train=(24, 0), ref=(24, 1))
        stats = result.runtime_stats
        assert stats.misspec_count() > 0
        kinds = {m.kind for m in stats.misspeculations}
        # The unprofiled && arm usually trips control speculation before
        # the value/lifetime checks get their turn — any of these is a
        # correct catch.
        assert kinds & {"value", "lifetime", "privacy", "control"}


class TestLifetimeViolation:
    SRC = """
    struct buf { int data[4]; struct buf* next; };
    struct buf* hold;
    int out[128];
    int main(int n, int keep) {
        for (int i = 0; i < n; i++) {
            struct buf* b = (struct buf*)malloc(sizeof(struct buf));
            b->data[0] = i;
            out[i] = b->data[0] * 2;
            for (int j = 0; j < 20; j++) { out[i] += j; }
            if (keep && i == n / 2) {
                hold = b;   /* escapes its iteration on the ref input */
            } else {
                free(b);
            }
        }
        printf("%d\\n", out[n-1]);
        return 0;
    }
    """

    def test_caught_and_recovered(self):
        prog, result = _run(self.SRC, "lifetime_violation",
                            train=(24, 0), ref=(24, 1))
        stats = result.runtime_stats
        assert stats.misspec_count() > 0
        kinds = {m.kind for m in stats.misspeculations}
        assert kinds & {"lifetime", "control", "privacy"}


class TestControlSpeculationViolation:
    # The rare path triggers at i == 30: never on the train input
    # (n = 24), exactly once on the ref input (n = 48).
    SRC = """
    int table[8];
    int out[128];
    void rare_path(int i) {
        /* cold on train: mutates shared state in an unprivatizable way */
        table[0] = table[0] + i;
    }
    int main(int n) {
        for (int i = 0; i < n; i++) {
            if (i == 30) { rare_path(i); }
            out[i] = table[i % 8] + i;
            for (int j = 0; j < 20; j++) { out[i] += j; }
        }
        printf("%d %d\\n", out[0], out[n-1]);
        return 0;
    }
    """

    def test_caught_and_recovered(self):
        prog, result = _run(self.SRC, "control_violation",
                            train=(24,), ref=(48,))
        stats = result.runtime_stats
        assert stats.misspec_count() > 0
        assert any(m.kind == "control" for m in stats.misspeculations)


class TestSeparationViolation:
    SRC = """
    int pool[64];
    int out[128];
    int* pick(int i) {
        if (i > 30) { return &out[0]; }   /* wrong heap! */
        return &pool[i % 64];
    }
    int main(int n) {
        for (int i = 0; i < n; i++) {
            int* p = pick(i);
            out[i] = *p + i;
            for (int j = 0; j < 20; j++) { out[i] += j; }
        }
        printf("%d %d\\n", out[0], out[n-1]);
        return 0;
    }
    """

    def test_caught_and_recovered(self):
        """On the ref input, pick() returns a pointer into a different
        logical heap than the profile promised: the heap-tag check (or
        the control guard on the cold branch) must fire."""
        prog, result = _run(self.SRC, "separation_violation",
                            train=(18,), ref=(40,))
        stats = result.runtime_stats
        assert stats.misspec_count() > 0
        kinds = {m.kind for m in stats.misspeculations}
        assert kinds & {"separation", "control", "privacy"}


class TestRecoveryBehaviour:
    def test_execution_resumes_parallel_after_recovery(self):
        """Misspeculation in the middle must not serialize the rest."""
        prog, result = _run(TestControlSpeculationViolation.SRC, "resume",
                            train=(24,), ref=(48,), workers=8)
        inv = result.invocations[0]
        assert inv.misspeculations >= 1
        # Iterations after the misspeculated one still ran speculatively:
        # the recovery only re-executed up to the misspeculation point.
        assert inv.recovered_iterations < inv.trips
