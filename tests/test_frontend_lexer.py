"""MiniC lexer."""

import pytest

from repro.frontend.lexer import CompileError, TokKind, tokenize


def kinds(src):
    return [t.kind for t in tokenize(src)[:-1]]  # drop EOF


def texts(src):
    return [t.text for t in tokenize(src)[:-1]]


class TestBasics:
    def test_empty(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind is TokKind.EOF

    def test_identifiers_and_keywords(self):
        toks = tokenize("int foo while_x struct")
        assert toks[0].kind is TokKind.KEYWORD
        assert toks[1].kind is TokKind.IDENT
        assert toks[2].kind is TokKind.IDENT  # while_x is not a keyword
        assert toks[3].kind is TokKind.KEYWORD

    def test_line_and_column(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)


class TestNumbers:
    @pytest.mark.parametrize("src,value", [
        ("0", 0), ("42", 42), ("0x1F", 31), ("0xdeadBEEF", 0xDEADBEEF),
        ("123456789012345", 123456789012345),
    ])
    def test_int(self, src, value):
        tok = tokenize(src)[0]
        assert tok.kind is TokKind.INT and tok.value == value

    @pytest.mark.parametrize("src,value", [
        ("1.5", 1.5), ("0.25", 0.25), ("1e3", 1000.0), ("2.5e-2", 0.025),
        ("1E+2", 100.0),
    ])
    def test_float(self, src, value):
        tok = tokenize(src)[0]
        assert tok.kind is TokKind.FLOAT and tok.value == pytest.approx(value)

    def test_suffixes_ignored(self):
        assert tokenize("10UL")[0].value == 10

    def test_member_access_not_float(self):
        assert texts("a.b") == ["a", ".", "b"]


class TestStringsAndChars:
    def test_string(self):
        tok = tokenize('"hello"')[0]
        assert tok.kind is TokKind.STRING and tok.value == "hello"

    def test_escapes(self):
        assert tokenize(r'"a\n\t\\\""')[0].value == 'a\n\t\\"'

    def test_hex_escape(self):
        assert tokenize(r'"\x41"')[0].value == "A"

    def test_char_literal(self):
        tok = tokenize("'x'")[0]
        assert tok.kind is TokKind.CHAR and tok.value == ord("x")

    def test_char_escape(self):
        assert tokenize(r"'\n'")[0].value == 10

    def test_unterminated_string(self):
        with pytest.raises(CompileError, match="unterminated"):
            tokenize('"oops')


class TestPunctuation:
    def test_longest_match(self):
        assert texts("a <<= b") == ["a", "<<=", "b"]
        assert texts("a << b") == ["a", "<<", "b"]
        assert texts("a->b") == ["a", "->", "b"]
        assert texts("a- >b") == ["a", "-", ">", "b"]

    def test_increment_vs_plus(self):
        assert texts("a+++b") == ["a", "++", "+", "b"]


class TestComments:
    def test_line_comment(self):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block(self):
        with pytest.raises(CompileError, match="unterminated"):
            tokenize("/* oops")

    def test_unexpected_character(self):
        with pytest.raises(CompileError, match="unexpected"):
            tokenize("a $ b")
