"""Profile persistence: save/load round trips and fingerprint safety."""

import pytest

from repro.classify import classify
from repro.frontend import compile_minic
from repro.profiling import profile_execution_time, profile_loop
from repro.profiling.serialize import (
    load_profile,
    module_fingerprint,
    profile_from_dict,
    profile_to_dict,
    save_profile,
)

SRC = """
struct n { int v; struct n* next; };
struct n* head;
int out[64];
int main(int n) {
    for (int i = 0; i < n; i++) {
        struct n* c = (struct n*)malloc(sizeof(struct n));
        c->v = i; c->next = head; head = c;
        int acc = 0;
        while (head != 0) {
            acc += head->v;
            struct n* d = head;
            head = head->next;
            free(d);
        }
        out[i] = acc;
        printf("%d\\n", acc);
    }
    return 0;
}
"""


@pytest.fixture(scope="module")
def profiled():
    mod = compile_minic(SRC, "ser")
    report = profile_execution_time(mod, args=(24,))
    ref = report.hottest(top_level_only=False)[0].ref
    return mod, profile_loop(mod, ref, args=(24,))


class TestRoundTrip:
    def test_dict_round_trip_preserves_everything(self, profiled):
        mod, prof = profiled
        restored = profile_from_dict(profile_to_dict(prof, mod), mod)
        assert restored.ref == prof.ref
        assert restored.read_sites == prof.read_sites
        assert restored.write_sites == prof.write_sites
        assert restored.redux_sites == prof.redux_sites
        assert restored.flow_deps == prof.flow_deps
        assert restored.short_lived_sites == prof.short_lived_sites
        assert restored.pointer_objects == prof.pointer_objects
        assert restored.value_predictions == prof.value_predictions
        assert restored.io_sites == prof.io_sites
        assert restored.unexecuted_blocks == prof.unexecuted_blocks
        assert (restored.loads, restored.stores) == (prof.loads, prof.stores)

    def test_file_round_trip(self, profiled, tmp_path):
        mod, prof = profiled
        path = tmp_path / "prof.json"
        save_profile(prof, path, mod)
        restored = load_profile(path, mod)
        assert restored.flow_deps == prof.flow_deps

    def test_serialization_is_deterministic(self, profiled, tmp_path):
        mod, prof = profiled
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        save_profile(prof, a, mod)
        save_profile(prof, b, mod)
        assert a.read_text() == b.read_text()

    def test_classification_identical_after_reload(self, profiled, tmp_path):
        mod, prof = profiled
        path = tmp_path / "prof.json"
        save_profile(prof, path, mod)
        restored = load_profile(path, mod)
        assert classify(restored).site_heaps == classify(prof).site_heaps


class TestFingerprint:
    def test_same_module_matches(self, profiled):
        mod, _ = profiled
        assert module_fingerprint(mod) == module_fingerprint(mod)

    def test_recompile_same_source_matches(self, profiled):
        # uids are renumbered deterministically at compile time, so the
        # fingerprint is a pure function of the source — this is what
        # lets the disk profile cache hit across pipeline invocations.
        mod, _ = profiled
        other = compile_minic(SRC, "ser")
        assert module_fingerprint(mod) == module_fingerprint(other)

    def test_different_module_rejected(self, profiled, tmp_path):
        mod, prof = profiled
        path = tmp_path / "prof.json"
        save_profile(prof, path, mod)
        other = compile_minic(SRC.replace("acc += head->v;",
                                          "acc += head->v + 1;"), "ser")
        with pytest.raises(ValueError, match="different module"):
            load_profile(path, other)

    def test_load_without_module_skips_check(self, profiled, tmp_path):
        mod, prof = profiled
        path = tmp_path / "prof.json"
        save_profile(prof, path, mod)
        restored = load_profile(path)
        assert restored.ref == prof.ref

    def test_version_check(self, profiled):
        mod, prof = profiled
        data = profile_to_dict(prof, mod)
        data["version"] = 99
        with pytest.raises(ValueError, match="version"):
            profile_from_dict(data)
