"""The observability layer: tracer, metrics registry, schema checks,
logging config, and end-to-end pipeline instrumentation."""

import json
import logging

import pytest

from repro import obs
from repro.obs import log as obs_log
from repro.obs import schema
from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.trace import (
    SIM_PID,
    TRACER,
    Tracer,
    timeline_to_chrome,
)
from repro.parallel.timeline import Timeline


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with observability off and clear."""
    TRACER.disable()
    TRACER.reset()
    METRICS.reset()
    yield
    TRACER.disable()
    TRACER.reset()
    METRICS.reset()


class TestTracer:
    def test_disabled_records_nothing(self):
        t = Tracer()
        with t.span("work", cat="test") as sp:
            sp.set(x=1)
        t.instant("evt")
        assert t.events == []

    def test_span_records_duration_and_attrs(self):
        t = Tracer()
        t.enable()
        with t.span("work", cat="test", a=1) as sp:
            sp.set(b=2)
        (ev,) = t.events
        assert ev["kind"] == "span"
        assert ev["name"] == "work"
        assert ev["dur_us"] >= 0
        assert ev["attrs"]["span_id"] >= 1  # auto-assigned, process-unique
        assert {k: v for k, v in ev["attrs"].items()
                if k != "span_id"} == {"a": 1, "b": 2}

    def test_span_end_attrs_and_idempotence(self):
        t = Tracer()
        t.enable()
        sp = t.span("explicit", cat="test")
        sp.end(result="ok")
        sp.end(result="twice")  # second end is a no-op
        (ev,) = t.events
        assert {k: v for k, v in ev["attrs"].items()
                if k != "span_id"} == {"result": "ok"}

    def test_span_records_exception_marker(self):
        t = Tracer()
        t.enable()
        with pytest.raises(ValueError):
            with t.span("boom", cat="test"):
                raise ValueError("x")
        (ev,) = t.events
        assert ev["attrs"]["error"] == "ValueError"

    def test_instants_and_monotonic_timestamps(self):
        t = Tracer()
        t.enable()
        t.instant("a")
        t.instant("b", cat="runtime", iteration=3)
        a, b = t.events
        assert a["ts_us"] <= b["ts_us"]
        assert b["attrs"]["iteration"] == 3

    def test_enable_resets_epoch_and_events(self):
        t = Tracer()
        t.enable()
        t.instant("old")
        t.enable()
        assert t.events == []

    def test_jsonl_round_trip(self, tmp_path):
        t = Tracer()
        t.enable()
        with t.span("phase", cat="pipeline"):
            t.instant("tick")
        path = tmp_path / "t.jsonl"
        n = t.write_jsonl(path)
        assert n == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["kind"] == "meta"
        assert {ln["kind"] for ln in lines[1:]} == {"span", "instant"}

    def test_chrome_export_shape(self):
        t = Tracer()
        t.enable()
        with t.span("phase", cat="pipeline"):
            pass
        t.instant("tick", tid=2)
        trace = t.chrome_trace()
        events = trace["traceEvents"]
        phases = {e["ph"] for e in events}
        assert "X" in phases and "i" in phases and "M" in phases
        x = next(e for e in events if e["ph"] == "X")
        assert x["name"] == "phase" and "dur" in x

    def test_render_summary_aggregates(self):
        t = Tracer()
        t.enable()
        for _ in range(3):
            with t.span("phase.a", cat="pipeline"):
                pass
        text = t.render_summary()
        assert "phase.a" in text
        assert "3" in text


class TestTimelineConverter:
    def test_workers_become_thread_lanes(self):
        tl = Timeline()
        tl.add("spawn", None, 0, 10)
        tl.add("iteration", 0, 10, 40, "i=0")
        tl.add("iteration", 1, 10, 35, "i=1")
        tl.add("checkpoint", None, 40, 45)
        events = timeline_to_chrome(tl, cycles_per_us=10.0)
        xs = [e for e in events if e.get("ph") == "X"]
        assert len(xs) == 4
        iter0 = next(e for e in xs if e["args"].get("label") == "i=0")
        assert iter0["tid"] == 1 and iter0["pid"] == SIM_PID
        assert iter0["ts"] == 1.0 and iter0["dur"] == 3.0
        ckpt = next(e for e in xs if e["args"]["kind"] == "checkpoint")
        assert ckpt["tid"] == 0

    def test_malformed_events_clamped(self):
        tl = Timeline()
        tl.add("iteration", 0, -5, -1)
        events = timeline_to_chrome(tl)
        x = next(e for e in events if e.get("ph") == "X")
        assert x["ts"] >= 0 and x["dur"] >= 0

    def test_merged_into_chrome_trace(self):
        tl = Timeline()
        tl.add("iteration", 0, 0, 10)
        t = Tracer()
        t.enable()
        t.instant("tick")
        trace = t.chrome_trace(timeline=tl)
        pids = {e["pid"] for e in trace["traceEvents"]}
        assert SIM_PID in pids and 1 in pids


class TestMetrics:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        reg.gauge("g").set(2.5)
        for v in (1, 2, 3, 4):
            reg.histogram("h").observe(v)
        snap = reg.snapshot()
        assert snap["c"]["value"] == 5
        assert snap["g"]["value"] == 2.5
        assert snap["h"]["count"] == 4
        assert snap["h"]["mean"] == 2.5
        assert snap["h"]["min"] == 1 and snap["h"]["max"] == 4

    def test_histogram_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in range(101):
            h.observe(v)
        assert h.percentile(50) == 50
        assert h.percentile(95) == 95

    def test_histogram_empty(self):
        h = MetricsRegistry().histogram("h")
        assert h.mean is None
        for p in (0, 50, 95, 100):
            assert h.percentile(p) is None
        snap = h.snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None
        assert snap["mean"] is None
        assert snap["p50"] is None and snap["p95"] is None

    def test_histogram_single_sample(self):
        h = MetricsRegistry().histogram("h")
        h.observe(42.0)
        # Every percentile of a one-sample distribution is that sample.
        for p in (0, 1, 50, 95, 99, 100):
            assert h.percentile(p) == 42.0
        snap = h.snapshot()
        assert snap["count"] == 1
        assert snap["min"] == snap["max"] == snap["mean"] == 42.0

    def test_histogram_percentile_bounds_clamped(self):
        h = MetricsRegistry().histogram("h")
        for v in (10, 20, 30):
            h.observe(v)
        # Out-of-range p clamps to the extreme samples, never indexes
        # outside the reservoir.
        assert h.percentile(-50) == 10
        assert h.percentile(0) == 10
        assert h.percentile(100) == 30
        assert h.percentile(500) == 30

    def test_histogram_beyond_reservoir_cap(self):
        from repro.obs.metrics import HISTOGRAM_SAMPLE_CAP

        h = MetricsRegistry().histogram("h")
        n = HISTOGRAM_SAMPLE_CAP + 500
        for v in range(n):
            h.observe(float(v))
        # Aggregates stay exact past the cap; the reservoir does not.
        assert h.count == n
        assert len(h.samples) == HISTOGRAM_SAMPLE_CAP
        assert h.min == 0.0 and h.max == float(n - 1)
        assert h.mean == sum(range(n)) / n
        # The reservoir samples the whole stream, not the first CAP
        # observations: late values must be represented.
        assert max(h.samples) >= float(HISTOGRAM_SAMPLE_CAP)
        # Percentiles become estimates over the reservoir: still
        # defined, still ordered, and bounded by the observed range.
        p50, p95 = h.percentile(50), h.percentile(95)
        assert p50 is not None and p95 is not None
        assert 0.0 <= p50 <= p95 <= float(n - 1)
        # A uniform reservoir puts the median estimate near the true
        # median (n/2), which first-N capping could never achieve.
        assert abs(p50 - n / 2) < n * 0.15

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_render_table(self):
        reg = MetricsRegistry()
        reg.counter("runtime.checks").inc(7)
        text = reg.render_table()
        assert "runtime.checks" in text and "7" in text
        assert MetricsRegistry().render_table() == "(no metrics recorded)"


class TestSchema:
    def _write(self, tmp_path, lines):
        p = tmp_path / "t.jsonl"
        p.write_text("\n".join(lines) + "\n")
        return str(p)

    def test_valid_trace_passes(self, tmp_path):
        TRACER.enable()
        with TRACER.span("phase", cat="pipeline"):
            TRACER.instant("tick")
        path = tmp_path / "ok.jsonl"
        TRACER.write_jsonl(path)
        report = schema.validate_jsonl(str(path))
        assert report["errors"] == []
        assert report["events"] == 3

    def test_rejects_bad_events(self, tmp_path):
        path = self._write(tmp_path, [
            '{"kind": "span"}',
            'not json',
            '{"kind": "wormhole", "name": 3, "cat": "x", "ts_us": -1, '
            '"pid": 1, "tid": 0, "attrs": {}}',
        ])
        report = schema.validate_jsonl(path)
        msgs = "\n".join(report["errors"])
        assert "missing field" in msgs
        assert "invalid JSON" in msgs
        assert "unknown kind" in msgs
        assert "negative ts_us" in msgs

    def test_empty_file_fails(self, tmp_path):
        path = self._write(tmp_path, [""])
        report = schema.validate_jsonl(path)
        assert any("no events" in e for e in report["errors"])

    def test_chrome_validation(self, tmp_path):
        TRACER.enable()
        with TRACER.span("phase", cat="pipeline"):
            pass
        path = tmp_path / "c.json"
        TRACER.write_chrome(path)
        assert schema.validate_chrome(str(path))["errors"] == []
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [{"ph": "Z"}]}')
        assert schema.validate_chrome(str(bad))["errors"]

    def test_cli_entry(self, tmp_path, capsys):
        TRACER.enable()
        TRACER.instant("tick")
        path = tmp_path / "t.jsonl"
        TRACER.write_jsonl(path)
        assert schema.main([str(path)]) == 0
        assert "ok:" in capsys.readouterr().out
        bad = self._write(tmp_path, ['{"kind": "span"}'])
        assert schema.main([bad]) == 1


class TestLogging:
    def test_namespace(self):
        assert obs_log.get_logger("runtime").name == "repro.runtime"
        assert obs_log.get_logger("repro.executor").name == "repro.executor"

    def test_configure_from_env_levels(self):
        assert obs_log.configure_from_env(env="debug", force=True) \
            == logging.DEBUG
        assert obs_log.configure_from_env(env="off", force=True) is None
        assert obs_log.configure_from_env(env="", force=True) is None

    def test_unconfigured_logger_stays_silent(self, capsys):
        # The NullHandler on the repro root must defeat logging's
        # last-resort stderr handler.
        obs_log.get_logger("runtime").warning("quiet please")
        assert capsys.readouterr().err == ""


class TestPipelineInstrumentation:
    """End-to-end: the full pipeline under tracing emits phase spans,
    runtime instants, and metrics."""

    @pytest.fixture(scope="class")
    def traced_run(self):
        from repro.bench.pipeline import prepare

        obs.enable()
        src = """
        int scratch[32];
        int out[32];
        int main(int n) {
            for (int i = 0; i < n; i++) {
                for (int j = 0; j < 32; j++) { scratch[j] = i + j; }
                int acc = 0;
                for (int j = 0; j < 32; j++) { acc = acc + scratch[j]; }
                out[i] = acc;
            }
            printf("%d\\n", out[3]);
            return 0;
        }
        """
        program = prepare(src, "obs_e2e", args=(16,), use_cache=False)
        result = program.execute(workers=4, misspec_period=7,
                                 record_timeline=True)
        events = list(TRACER.events)
        metrics = METRICS.snapshot()
        obs.disable()
        return program, result, events, metrics

    def test_phase_spans_present(self, traced_run):
        _, _, events, _ = traced_run
        spans = {e["name"] for e in events if e["kind"] == "span"}
        for phase in ("pipeline.compile", "pipeline.profile.time",
                      "pipeline.profile.loop", "pipeline.classify",
                      "pipeline.transform", "pipeline.prepare",
                      "pipeline.execute", "executor.invocation"):
            assert phase in spans, f"missing span {phase}"

    def test_runtime_instants_present(self, traced_run):
        _, result, events, _ = traced_run
        instants = [e for e in events if e["kind"] == "instant"]
        names = {e["name"] for e in instants}
        assert "runtime.checkpoint" in names
        assert "runtime.misspec" in names  # misspec_period=7 injected some
        assert "executor.recovery" in names
        ckpts = [e for e in instants if e["name"] == "runtime.checkpoint"]
        assert len(ckpts) == result.runtime_stats.checkpoints
        for e in ckpts:
            assert e["attrs"]["cycles"] > 0

    def test_invocation_span_has_cycle_dual(self, traced_run):
        _, result, events, _ = traced_run
        inv = next(e for e in events if e["kind"] == "span"
                   and e["name"] == "executor.invocation")
        assert inv["attrs"]["wall_cycles"] > 0
        assert inv["attrs"]["trips"] == 16

    def test_metrics_capture_runtime_counters(self, traced_run):
        _, result, events, metrics = traced_run
        stats = result.runtime_stats
        assert metrics["runtime.checkpoints"]["value"] == stats.checkpoints
        assert metrics["runtime.shadow.bytes_written"]["value"] \
            == stats.private_write_bytes
        assert metrics["runtime.misspec.injected"]["value"] \
            == stats.misspec_count() - stats.misspec_count(
                include_injected=False)
        assert metrics["classify.sites.private"]["value"] >= 1
        assert metrics["interp.ips.fast"]["count"] >= 1 \
            or metrics.get("interp.ips.step", {}).get("count", 0) >= 1

    def test_artifacts_validate_against_schema(self, traced_run, tmp_path):
        _, result, events, _ = traced_run
        t = Tracer()
        t.enable()
        t.events = list(events)
        jsonl = tmp_path / "e2e.trace.jsonl"
        chrome = tmp_path / "e2e.chrome.json"
        t.write_jsonl(jsonl)
        t.write_chrome(chrome, timeline=result.timeline)
        assert schema.validate_jsonl(str(jsonl))["errors"] == []
        assert schema.validate_chrome(str(chrome))["errors"] == []
