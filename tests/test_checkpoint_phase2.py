"""Phase-two (checkpoint-time) privacy validation: the cross-worker cases
the inline check cannot see (§5.1-5.2).

These drive RuntimeSystem.checkpoint directly with hand-built worker
states, byte by byte.
"""

import pytest

from repro.bench.pipeline import prepare
from repro.classify.heaps import HeapKind
from repro.interp.errors import Misspeculation
from repro.parallel.executor import DOALLExecutor
from repro.runtime.shadow import timestamp_for

SRC = """
int scratch[8];
int out[64];
int main(int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < 8; j++) { scratch[j] = i + j; }
        int acc = 0;
        for (int j = 0; j < 8; j++) { acc = acc + scratch[j]; }
        out[i] = acc;
    }
    printf("%d\\n", out[0]);
    return 0;
}
"""


@pytest.fixture
def runtime():
    prog = prepare(SRC, "phase2", args=(16,))
    executor = DOALLExecutor(prog.module, prog.plan, workers=2)
    rt = executor.runtime
    rt.begin_invocation(2)
    yield rt
    if rt.speculating:
        rt.end_invocation()


def _ts(i):
    return timestamp_for(i, 0)


class TestPhase2CrossWorker:
    def test_clean_epoch_commits(self, runtime):
        w0, w1 = runtime.workers
        w0.shadow.on_write(0, 4, _ts(0), 0)
        w1.shadow.on_write(4, 4, _ts(1), 1)
        w0.epoch_written_offsets.update(range(0, 4))
        w1.epoch_written_offsets.update(range(4, 8))
        record = runtime.checkpoint(0, 2)
        assert not record.speculative
        assert runtime.stats.checkpoints == 1

    def test_cross_worker_flow_detected(self, runtime):
        """Worker 1 wrote a byte this epoch; worker 0 read it live-in:
        without a read timestamp the order is unknowable — conservative
        misspeculation."""
        w0, w1 = runtime.workers
        w1.shadow.on_write(0, 4, _ts(1), 1)
        w1.epoch_written_offsets.update(range(0, 4))
        w0.shadow.on_read(0, 4, _ts(0), 0)  # live-in from w0's view
        with pytest.raises(Misspeculation, match="cross-worker"):
            runtime.checkpoint(0, 2)

    def test_committed_old_write_detected(self, runtime):
        """A byte committed by an earlier epoch must not be read as
        live-in in a later epoch (loop-carried flow across checkpoints)."""
        w0, w1 = runtime.workers
        w0.shadow.on_write(0, 4, _ts(0), 0)
        w0.epoch_written_offsets.update(range(0, 4))
        runtime.checkpoint(0, 2)  # commits: committed_meta[0..4) = 1

        # next epoch: w1 reads the byte as (apparently) live-in
        w1.shadow.on_read(0, 4, _ts(0), 2)
        with pytest.raises(Misspeculation, match="earlier checkpoint"):
            runtime.checkpoint(2, 4)

    def test_same_worker_reread_after_checkpoint_caught_inline(self, runtime):
        """The same-worker flavour is caught by phase 1 (old-write)."""
        w0, _ = runtime.workers
        w0.shadow.on_write(0, 4, _ts(0), 0)
        w0.epoch_written_offsets.update(range(0, 4))
        runtime.checkpoint(0, 2)
        with pytest.raises(Misspeculation, match="checkpoint"):
            w0.shadow.on_read(0, 4, _ts(0), 2)

    def test_merge_takes_latest_iteration(self, runtime):
        """Per byte, the checkpoint commits the value written by the
        latest iteration across all workers."""
        w0, w1 = runtime.workers
        base = runtime.private_base
        # Worker 0 writes iteration 0; worker 1 writes iteration 1.
        w0.space.write_int(base, 100, 4)
        w0.shadow.on_write(0, 4, _ts(0), 0)
        w0.epoch_written_offsets.update(range(0, 4))
        w1.space.write_int(base, 200, 4)
        w1.shadow.on_write(0, 4, _ts(1), 1)
        w1.epoch_written_offsets.update(range(0, 4))
        runtime.checkpoint(0, 2)
        assert runtime.main_space.read_int(base, 4, signed=True) == 200

    def test_recovery_writes_poison_later_livein_reads(self, runtime):
        runtime.squash_to_recovery(1)
        addr = runtime.private_base + 16
        runtime.note_recovery_write(addr, 4)
        runtime.resume_after_recovery(2)
        w0 = runtime.workers[0]
        w0.shadow.on_read(16, 4, _ts(0), 2)
        with pytest.raises(Misspeculation):
            runtime.checkpoint(2, 4)
