"""The job-observability plane: bucketed histograms, labeled metric
names, the extended Prometheus lint, span-id context propagation, the
on-disk metrics history ring, and the ``repro dash`` renderer."""

import json
import threading

import pytest

from repro.obs import schema
from repro.obs.dash import (
    main as dash_main,
    misspec_rate_series,
    render_dash_html,
    series_rate,
    sparkline,
)
from repro.obs.history import (
    HISTORY_DIR_ENV,
    HistorySampler,
    compact_snapshot,
    read_history,
    resolve_history_dir,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    HISTOGRAM_SAMPLE_CAP,
    METRICS,
    MetricsRegistry,
    labeled,
    parse_metric_name,
    render_prometheus,
)
from repro.obs.trace import TRACER, Tracer


@pytest.fixture(autouse=True)
def _clean_obs():
    TRACER.disable()
    TRACER.reset()
    METRICS.reset()
    yield
    TRACER.disable()
    TRACER.reset()
    METRICS.reset()


class TestBucketedHistogram:
    def test_default_ladder_is_ascending_and_bounded(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert len(set(DEFAULT_BUCKETS)) == len(DEFAULT_BUCKETS)
        assert DEFAULT_BUCKETS[0] == 1.0
        assert DEFAULT_BUCKETS[-1] == 1e8

    def test_le_is_inclusive(self):
        h = MetricsRegistry().histogram("h")
        h.observe(1.0)  # == the first bound: must land in le=1.0
        (le0, n0), *_ = h.cumulative_buckets()
        assert le0 == 1.0 and n0 == 1

    def test_cumulative_series_ends_at_count(self):
        h = MetricsRegistry().histogram("h")
        for v in (0.5, 3.0, 7.0, 1e9):  # last overflows every bound
            h.observe(v)
        series = h.cumulative_buckets()
        counts = [n for _, n in series]
        assert counts == sorted(counts)  # cumulative
        assert series[-1] == ("+Inf", 4)
        snap = h.snapshot()
        assert snap["buckets"][-1] == ["+Inf", 4]

    def test_reservoir_is_deterministic_per_name(self):
        a = MetricsRegistry().histogram("same")
        b = MetricsRegistry().histogram("same")
        for v in range(HISTOGRAM_SAMPLE_CAP + 200):
            a.observe(float(v))
            b.observe(float(v))
        assert a.samples == b.samples

    def test_merge_adds_buckets_exactly(self):
        a = MetricsRegistry().histogram("m")
        b = MetricsRegistry().histogram("m")
        for v in (0.5, 3.0):
            a.observe(v)
        for v in (7.0, 1e9):
            b.observe(v)
        a.merge(b.dump())
        assert a.count == 4
        assert a.min == 0.5 and a.max == 1e9
        series = a.cumulative_buckets()
        assert series[-1] == ("+Inf", 4)
        # Exact, not reservoir-approximated: all four observations are
        # bucketed even though they were recorded in two registries.
        assert sum(a.bucket_counts) == 4

    def test_merge_ladder_mismatch_rebuckets_from_samples(self):
        h = MetricsRegistry().histogram("m")
        h.merge({"type": "histogram", "count": 2, "sum": 4.0,
                 "min": 1.5, "max": 2.5, "samples": [1.5, 2.5],
                 "le": [1.0, 2.0],  # foreign ladder
                 "bucket_counts": [0, 1, 1]})
        assert h.count == 2
        assert h.cumulative_buckets()[-1] == ("+Inf", 2)


class TestLabeledNames:
    def test_labeled_sorts_keys(self):
        assert labeled("x.y", tier="warm", outcome="done") == \
            'x.y{outcome="done",tier="warm"}'
        assert labeled("x.y") == "x.y"

    def test_parse_round_trip(self):
        name = labeled("service.job.total_us", outcome="done", tier="cold")
        base, pairs = parse_metric_name(name)
        assert base == "service.job.total_us"
        assert pairs == [("outcome", "done"), ("tier", "cold")]

    def test_parse_positional_prefixes(self):
        assert parse_metric_name("worker.3.ship_us") == \
            ("ship_us", [("worker", "3")])
        assert parse_metric_name("job.j7.latency_us") == \
            ("latency_us", [("job", "j7")])
        assert parse_metric_name("plain.name") == ("plain.name", [])

    def test_malformed_braces_degrade_to_unlabeled(self):
        assert parse_metric_name("x{not-a-pair}") == ("x{not-a-pair}", [])


class TestPromRender:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("service.jobs.completed").inc(3)
        reg.gauge("service.queue.depth").set(2)
        reg.histogram("service.job.total_us").observe(10.0)
        reg.histogram(
            labeled("service.job.total_us", outcome="done",
                    tier="warm")).observe(250.0)
        return reg

    def test_labeled_and_unlabeled_share_one_family(self):
        text = render_prometheus(self._registry().snapshot())
        assert text.count("# TYPE repro_service_job_total_us histogram") == 1
        assert 'repro_service_job_total_us_bucket{le="+Inf"} 1' in text
        assert ('repro_service_job_total_us_bucket{outcome="done",'
                'tier="warm",le="+Inf"} 1') in text
        assert "repro_service_job_total_us_count 1" in text
        assert ('repro_service_job_total_us_count{outcome="done",'
                'tier="warm"} 1') in text
        assert ('repro_service_job_total_us_sum{outcome="done",'
                'tier="warm"} 250.0') in text

    def test_rendered_exposition_passes_the_lint(self, tmp_path):
        p = tmp_path / "m.prom"
        p.write_text(render_prometheus(self._registry().snapshot()))
        report = schema.validate_prom(str(p))
        assert report["errors"] == []
        assert report["families"]["repro_service_job_total_us"] == \
            "histogram"

    def test_bucketless_snapshot_falls_back_to_summary(self, tmp_path):
        # Old dumps (and worker-merged snapshots predating buckets) have
        # no bucket data: they must render as a summary, not a broken
        # histogram.
        snap = {"x.y_us": {"type": "histogram", "count": 2, "sum": 30.0,
                           "p50": 10.0, "p95": 20.0}}
        text = render_prometheus(snap)
        assert "# TYPE repro_x_y_us summary" in text
        assert 'repro_x_y_us{quantile="0.5"} 10.0' in text
        p = tmp_path / "m.prom"
        p.write_text(text)
        assert schema.validate_prom(str(p))["errors"] == []


class TestPromLint:
    def _lint(self, tmp_path, text):
        p = tmp_path / "m.prom"
        p.write_text(text)
        return schema.validate_prom(str(p))["errors"]

    def test_missing_inf_bucket(self, tmp_path):
        errors = self._lint(tmp_path, "\n".join([
            "# TYPE repro_h histogram",
            'repro_h_bucket{le="1.0"} 1',
            "repro_h_count 1",
            "repro_h_sum 0.5",
        ]) + "\n")
        assert any("missing +Inf" in e for e in errors)

    def test_non_cumulative_counts(self, tmp_path):
        errors = self._lint(tmp_path, "\n".join([
            "# TYPE repro_h histogram",
            'repro_h_bucket{le="1.0"} 5',
            'repro_h_bucket{le="2.0"} 3',
            'repro_h_bucket{le="+Inf"} 5',
            "repro_h_count 5",
            "repro_h_sum 4.0",
        ]) + "\n")
        assert any("not cumulative" in e for e in errors)

    def test_non_ascending_ladder(self, tmp_path):
        errors = self._lint(tmp_path, "\n".join([
            "# TYPE repro_h histogram",
            'repro_h_bucket{le="2.0"} 1',
            'repro_h_bucket{le="1.0"} 1',
            'repro_h_bucket{le="+Inf"} 1',
            "repro_h_count 1",
            "repro_h_sum 1.0",
        ]) + "\n")
        assert any("not strictly ascending" in e for e in errors)

    def test_inf_bucket_must_equal_count(self, tmp_path):
        errors = self._lint(tmp_path, "\n".join([
            "# TYPE repro_h histogram",
            'repro_h_bucket{le="1.0"} 1',
            'repro_h_bucket{le="+Inf"} 1',
            "repro_h_count 2",
            "repro_h_sum 1.0",
        ]) + "\n")
        assert any("!= _count" in e for e in errors)

    def test_histogram_family_requires_buckets(self, tmp_path):
        errors = self._lint(tmp_path, "\n".join([
            "# TYPE repro_h histogram",
            "repro_h_count 1",
            "repro_h_sum 1.0",
        ]) + "\n")
        assert any("no _bucket samples" in e for e in errors)

    def test_bucket_sample_requires_le(self, tmp_path):
        errors = self._lint(tmp_path, "\n".join([
            "# TYPE repro_h histogram",
            'repro_h_bucket{tier="warm"} 1',
            'repro_h_bucket{le="+Inf"} 1',
            "repro_h_count 1",
            "repro_h_sum 1.0",
        ]) + "\n")
        assert any("missing le label" in e for e in errors)

    def test_per_labelset_series_are_checked_independently(self, tmp_path):
        errors = self._lint(tmp_path, "\n".join([
            "# TYPE repro_h histogram",
            'repro_h_bucket{tier="a",le="1.0"} 1',
            'repro_h_bucket{tier="a",le="+Inf"} 1',
            'repro_h_count{tier="a"} 1',
            'repro_h_sum{tier="a"} 0.5',
            'repro_h_bucket{tier="b",le="1.0"} 9',
            'repro_h_bucket{tier="b",le="+Inf"} 2',  # broken series
            'repro_h_count{tier="b"} 2',
            'repro_h_sum{tier="b"} 0.5',
        ]) + "\n")
        assert len(errors) == 1
        assert 'tier="b"' in errors[0]


class TestMetricsPayloadLint:
    def _payload(self, tmp_path, metrics):
        p = tmp_path / "metrics.json"
        p.write_text(json.dumps({
            "status_format": 1, "generated_unix": 1.0, "run": {},
            "metrics": metrics}))
        return schema.validate_metrics(str(p))

    def test_labeled_names_are_accepted(self, tmp_path):
        name = labeled("service.job.total_us", outcome="done", tier="warm")
        report = self._payload(tmp_path, {
            name: {"type": "histogram", "count": 1, "sum": 2.0}})
        assert report["errors"] == []

    def test_malformed_labeled_names_are_flagged(self, tmp_path):
        report = self._payload(tmp_path, {
            "x{oops}": {"type": "counter", "value": 1}})
        assert any("malformed labeled metric name" in e
                   for e in report["errors"])


class TestTracerContext:
    def test_context_rides_every_event(self):
        t = Tracer()
        t.enable()
        t.set_context(job="j1", job_span=7)
        with t.span("work", cat="test"):
            pass
        t.instant("tick")
        span_ev, instant_ev = t.events
        for ev in (span_ev, instant_ev):
            assert ev["attrs"]["job"] == "j1"
            assert ev["attrs"]["job_span"] == 7

    def test_explicit_attrs_beat_context(self):
        t = Tracer()
        t.enable()
        t.set_context(tier="cold")
        with t.span("work", cat="test", tier="warm"):
            pass
        (ev,) = t.events
        assert ev["attrs"]["tier"] == "warm"

    def test_clear_context(self):
        t = Tracer()
        t.set_context(a=1, b=2)
        t.clear_context("a")
        assert t.context == {"b": 2}
        t.clear_context()
        assert t.context == {}

    def test_reset_clears_context(self):
        t = Tracer()
        t.set_context(job="j1")
        t.reset()
        assert t.context == {}

    def test_span_ids_are_unique_across_threads(self):
        t = Tracer()
        out = []
        lock = threading.Lock()

        def grab():
            ids = [t.next_span_id() for _ in range(200)]
            with lock:
                out.extend(ids)

        threads = [threading.Thread(target=grab) for _ in range(4)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert len(out) == len(set(out)) == 800

    def test_emit_span_records_given_duration(self):
        t = Tracer()
        t.emit_span("job.queue_wait", cat="service", dur_us=1234.5)
        assert t.events == []  # disabled: no-op
        t.enable()
        t.instant("first")
        t.emit_span("job.queue_wait", cat="service", dur_us=1234.5,
                    started_unix=42.0)
        first, ev = t.events
        assert ev["kind"] == "span"
        assert ev["dur_us"] == 1234.5
        assert ev["attrs"]["started_unix"] == 42.0
        assert ev["attrs"]["span_id"] > 0
        # Lands at the current monotonic position, never before it.
        assert ev["ts_us"] >= first["ts_us"] >= 0

    def test_span_ids_unique_across_span_kinds(self):
        t = Tracer()
        t.enable()
        with t.span("a", cat="test"):
            pass
        t.emit_span("b", cat="test", dur_us=1.0)
        ids = [ev["attrs"]["span_id"] for ev in t.events]
        assert len(ids) == len(set(ids)) == 2


class TestHistoryRing:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("service.jobs.completed").inc(5)
        reg.gauge("service.queue.depth").set(1)
        reg.histogram("service.job.latency_us").observe(1500.0)
        reg.counter("job.j1.retries").inc()  # per-job: must be skipped
        return reg

    def test_compact_snapshot_shape(self):
        snap = compact_snapshot(self._registry())
        assert snap["service.jobs.completed"] == \
            {"type": "counter", "value": 5}
        hist = snap["service.job.latency_us"]
        assert hist["type"] == "histogram"
        assert hist["count"] == 1 and hist["p50"] == 1500.0
        assert set(hist) == {"type", "count", "sum", "p50", "p99"}
        assert not any(n.startswith("job.") for n in snap)

    def test_sample_appends_readable_records(self, tmp_path):
        s = HistorySampler(str(tmp_path), registry=self._registry())
        s.dir.mkdir(parents=True, exist_ok=True)
        s.sample()
        s.sample()
        records = read_history(str(tmp_path))
        assert len(records) == 2
        assert records[0]["history_format"] == 1
        assert records[0]["metrics"]["service.queue.depth"]["value"] == 1

    def test_ring_stays_bounded(self, tmp_path):
        s = HistorySampler(str(tmp_path), registry=MetricsRegistry(),
                           max_records=8)
        s.dir.mkdir(parents=True, exist_ok=True)
        for _ in range(40):
            s.sample()
        assert s._count_lines() <= 8
        assert read_history(s.path)  # still a readable ring

    def test_read_history_skips_malformed_lines(self, tmp_path):
        s = HistorySampler(str(tmp_path), registry=MetricsRegistry())
        s.dir.mkdir(parents=True, exist_ok=True)
        s.sample()
        with open(s.path, "a") as fh:
            fh.write('{"truncated-mid-append\n')
        s.sample()
        assert len(read_history(str(tmp_path))) == 2

    def test_read_history_missing_path(self, tmp_path):
        assert read_history(str(tmp_path / "nope")) == []

    def test_resolve_history_dir_precedence(self, monkeypatch):
        monkeypatch.delenv(HISTORY_DIR_ENV, raising=False)
        assert resolve_history_dir(None) is None
        monkeypatch.setenv(HISTORY_DIR_ENV, "/tmp/env-ring")
        assert resolve_history_dir(None) == "/tmp/env-ring"
        assert resolve_history_dir("/tmp/explicit") == "/tmp/explicit"

    def test_start_stop_takes_final_sample(self, tmp_path):
        s = HistorySampler(str(tmp_path), registry=self._registry(),
                           interval_s=30.0)
        s.start()
        assert s.alive
        s.stop()
        assert not s.alive
        s.stop()  # idempotent
        # The interval never elapsed, but stop() flushed one snapshot.
        assert len(read_history(str(tmp_path))) == 1


class TestDash:
    def _records(self):
        def rec(ts, completed, submitted, p50, p99, depth,
                misspecs=0, epochs=0):
            return {"history_format": 1, "ts_unix": ts, "metrics": {
                "service.jobs.completed":
                    {"type": "counter", "value": completed},
                "service.jobs.submitted":
                    {"type": "counter", "value": submitted},
                "service.job.latency_us":
                    {"type": "histogram", "count": completed,
                     "sum": 0.0, "p50": p50, "p99": p99},
                "service.queue.depth": {"type": "gauge", "value": depth},
                "service.retry_after_s": {"type": "gauge", "value": 1.0},
                "runtime.misspec.privacy":
                    {"type": "counter", "value": misspecs},
                "executor.epochs": {"type": "counter", "value": epochs},
            }}
        return [rec(100.0, 0, 0, None, None, 0),
                rec(102.0, 4, 6, 1500.0, 9000.0, 2, misspecs=1, epochs=9),
                rec(104.0, 10, 10, 1200.0, 7000.0, 0, misspecs=1,
                    epochs=19)]

    def test_series_rate(self):
        rates = series_rate(self._records(), "service.jobs.completed")
        assert rates[0] is None
        assert rates[1] == pytest.approx(2.0)  # 4 jobs / 2s
        assert rates[2] == pytest.approx(3.0)

    def test_misspec_rate(self):
        rates = misspec_rate_series(self._records())
        assert rates[0] is None
        assert rates[1] == pytest.approx(0.1)   # 1 of (1 + 9)
        assert rates[2] == pytest.approx(0.0)   # no new misspecs

    def test_sparkline_handles_gaps_and_empty(self):
        assert "no data" in sparkline([None, None])
        svg = sparkline([1.0, None, 2.0, 3.0])
        assert svg.startswith("<svg")
        assert "polyline" in svg      # the 2-point run
        assert "circle" in svg        # the isolated point

    def test_render_dash_html(self):
        page = render_dash_html(self._records(), source="/tmp/ring")
        assert page.startswith("<!DOCTYPE html>")
        for title in ("jobs completed /s", "job latency p99",
                      "misspeculation rate", "queue depth"):
            assert title in page
        assert "service.job.latency_us" in page  # the latest-values table
        assert "3 snapshot(s)" in page
        assert "/tmp/ring" in page
        assert "<script" not in page  # self-contained, no JS

    def test_cli_requires_history(self, tmp_path, monkeypatch, capsys):
        monkeypatch.delenv(HISTORY_DIR_ENV, raising=False)
        assert dash_main([]) == 2
        empty = tmp_path / "empty"
        empty.mkdir()
        assert dash_main(["--history-dir", str(empty)]) == 1
        capsys.readouterr()

    def test_cli_writes_html(self, tmp_path, capsys):
        s = HistorySampler(str(tmp_path), registry=MetricsRegistry())
        s.dir.mkdir(parents=True, exist_ok=True)
        s.sample()
        out = tmp_path / "dash.html"
        assert dash_main(["--history-dir", str(tmp_path),
                          "--out", str(out)]) == 0
        assert out.read_text().startswith("<!DOCTYPE html>")
        capsys.readouterr()

    def test_repro_subcommand_delegates(self, tmp_path, capsys):
        from repro.__main__ import main as repro_main
        s = HistorySampler(str(tmp_path), registry=MetricsRegistry())
        s.dir.mkdir(parents=True, exist_ok=True)
        s.sample()
        rc = repro_main(["dash", "--history-dir", str(tmp_path)])
        assert rc == 0
        assert capsys.readouterr().out.startswith("<!DOCTYPE html>")
