"""CFG, dominators, dominance frontiers, loop forest, induction vars."""

import pytest

from repro.analysis import CFG, DominatorTree, LoopInfo
from repro.frontend import compile_minic


def _main(src):
    mod = compile_minic(src)
    return mod, mod.function_named("main")


DIAMOND = """
int main(int x) {
    int r;
    if (x > 0) { r = 1; } else { r = 2; }
    return r;
}
"""

NESTED_LOOPS = """
int main(int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < i; j++) { acc += j; }
    }
    return acc;
}
"""


class TestCFG:
    def test_preds_and_succs_consistent(self):
        _, fn = _main(DIAMOND)
        cfg = CFG(fn)
        for bb in fn.blocks:
            for s in cfg.succs[bb]:
                assert bb in cfg.preds[s]

    def test_reverse_postorder_starts_at_entry(self):
        _, fn = _main(DIAMOND)
        rpo = CFG(fn).reverse_postorder()
        assert rpo[0] is fn.entry

    def test_rpo_places_preds_first_in_acyclic(self):
        _, fn = _main(DIAMOND)
        cfg = CFG(fn)
        rpo = cfg.reverse_postorder()
        pos = {bb: i for i, bb in enumerate(rpo)}
        # merge block comes after both branch arms
        merge = fn.block_named("if.end")
        for p in cfg.preds[merge]:
            assert pos[p] < pos[merge]

    def test_remove_unreachable(self):
        mod, fn = _main("int main() { return 1; return 2; }")
        cfg = CFG(fn)
        removed = cfg.remove_unreachable()
        assert removed >= 1


class TestDominators:
    def test_entry_dominates_all(self):
        _, fn = _main(NESTED_LOOPS)
        dt = DominatorTree(fn)
        for bb in CFG(fn).reachable():
            assert dt.dominates(fn.entry, bb)

    def test_branch_arms_not_dominating_merge(self):
        _, fn = _main(DIAMOND)
        dt = DominatorTree(fn)
        then = fn.block_named("if.then")
        merge = fn.block_named("if.end")
        assert not dt.dominates(then, merge)

    def test_header_dominates_body(self):
        _, fn = _main(NESTED_LOOPS)
        dt = DominatorTree(fn)
        header = fn.block_named("for.cond")
        body = fn.block_named("for.body")
        assert dt.strictly_dominates(header, body)

    def test_dominance_frontier_of_arms_is_merge(self):
        _, fn = _main(DIAMOND)
        dt = DominatorTree(fn)
        df = dt.dominance_frontiers()
        then = fn.block_named("if.then")
        merge = fn.block_named("if.end")
        assert merge in df[then]

    def test_loop_header_in_own_frontier(self):
        _, fn = _main(NESTED_LOOPS)
        dt = DominatorTree(fn)
        df = dt.dominance_frontiers()
        header = fn.block_named("for.cond")
        assert header in df[header]  # via the back edge


class TestLoopForest:
    def test_two_nested_loops_found(self):
        _, fn = _main(NESTED_LOOPS)
        li = LoopInfo(fn)
        assert len(li.loops) == 2
        depths = sorted(l.depth for l in li.loops)
        assert depths == [1, 2]

    def test_nesting_parents(self):
        _, fn = _main(NESTED_LOOPS)
        li = LoopInfo(fn)
        inner = next(l for l in li.loops if l.depth == 2)
        outer = next(l for l in li.loops if l.depth == 1)
        assert inner.parent is outer
        assert inner in outer.children
        assert outer.contains_loop(inner)

    def test_innermost_map(self):
        _, fn = _main(NESTED_LOOPS)
        li = LoopInfo(fn)
        inner_body = fn.block_named("for.body.1")
        assert li.innermost_loop_of(inner_body).depth == 2

    def test_preheader_and_latch(self):
        _, fn = _main(NESTED_LOOPS)
        li = LoopInfo(fn)
        outer = next(l for l in li.loops if l.depth == 1)
        cfg = CFG(fn)
        assert outer.preheader(cfg) is not None
        assert len(outer.latches) == 1

    def test_exit_blocks(self):
        _, fn = _main(NESTED_LOOPS)
        li = LoopInfo(fn)
        outer = next(l for l in li.loops if l.depth == 1)
        exits = outer.exit_blocks()
        assert len(exits) == 1 and exits[0].name.startswith("for.end")

    def test_while_loop_detected(self):
        _, fn = _main("int main() { int i = 0; while (i < 5) { i++; } return i; }")
        li = LoopInfo(fn)
        assert len(li.loops) == 1


class TestInductionVariables:
    def _iv(self, src, header_name="for.cond"):
        _, fn = _main(src)
        li = LoopInfo(fn)
        loop = li.loop_with_header(header_name)
        return li.find_induction_variable(loop)

    def test_canonical_upcount(self):
        iv = self._iv("int main(int n) { int a=0; for (int i = 0; i < n; i++)"
                      " { a+=i; } return a; }")
        assert iv is not None and iv.step == 1
        assert not iv.exit_on_true

    def test_downcount(self):
        iv = self._iv("int main(int n) { int a=0; for (int i = n; i > 0; i--)"
                      " { a+=i; } return a; }")
        assert iv is not None and iv.step == -1

    def test_strided(self):
        iv = self._iv("int main(int n) { int a=0; for (int i = 0; i < n; i += 3)"
                      " { a+=i; } return a; }")
        assert iv is not None and iv.step == 3

    def test_non_constant_step_rejected(self):
        iv = self._iv("int main(int n) { int a=0; for (int i = 1; i < n; i += i)"
                      " { a+=1; } return a; }")
        assert iv is None

    def test_variant_bound_rejected(self):
        src = """
        int main(int n) {
            int a = 0;
            int bound = n;
            for (int i = 0; i < bound; i++) { a += i; bound--; }
            return a;
        }
        """
        assert self._iv(src) is None

    def test_invariant_runtime_bound_accepted(self):
        iv = self._iv("int main(int n) { int a=0; int m = n * 2;"
                      " for (int i = 0; i < m; i++) { a+=i; } return a; }")
        assert iv is not None
