"""DOALL executor: trip counts, scheduling, misspeculation recovery,
timelines, and the cost/overhead accounting."""

import pytest

from repro.ir.instructions import CmpPred
from repro.parallel.executor import trip_count

from .helpers import prepared_counter_program


class TestTripCount:
    @pytest.mark.parametrize("init,bound,step,pred,exit_on_true,expect", [
        (0, 10, 1, CmpPred.LT, False, 10),
        (0, 10, 2, CmpPred.LT, False, 5),
        (0, 11, 2, CmpPred.LT, False, 6),
        (0, 10, 1, CmpPred.LE, False, 11),
        (10, 0, -1, CmpPred.GT, False, 10),
        (10, 0, -2, CmpPred.GE, False, 6),
        (0, 10, 1, CmpPred.NE, False, 10),
        (5, 5, 1, CmpPred.LT, False, 0),
        (9, 5, 1, CmpPred.LT, False, 0),
        # exit_on_true inverts the predicate:
        (0, 10, 1, CmpPred.GE, True, 10),
    ])
    def test_counts(self, init, bound, step, pred, exit_on_true, expect):
        assert trip_count(init, bound, step, pred, exit_on_true) == expect

    def test_uncomputable_returns_none(self):
        assert trip_count(0, 7, 2, CmpPred.NE, False) is None
        assert trip_count(0, 10, -1, CmpPred.LT, False) is None


@pytest.fixture(scope="module")
def counter():
    return prepared_counter_program(32)


class TestParallelExecution:
    def test_result_identical_to_sequential(self, counter):
        result = counter.execute(workers=4)
        assert result.output == counter.sequential.output
        assert result.return_value == counter.sequential.return_value

    def test_single_worker_still_correct(self, counter):
        result = counter.execute(workers=1)
        assert result.output == counter.sequential.output

    def test_more_workers_than_iterations(self, counter):
        result = counter.execute(workers=64)
        assert result.output == counter.sequential.output

    def test_speedup_monotone_in_workers(self, counter):
        s4 = counter.speedup(counter.execute(workers=4))
        s16 = counter.speedup(counter.execute(workers=16))
        assert s16 > s4 > 1.0

    def test_invocation_accounting(self, counter):
        result = counter.execute(workers=4)
        assert len(result.invocations) == 1
        inv = result.invocations[0]
        assert inv.trips == 32
        assert inv.workers == 4
        assert inv.wall_cycles > 0
        assert inv.useful_cycles > 0

    def test_overhead_breakdown_sums_to_one(self, counter):
        result = counter.execute(workers=8)
        breakdown = result.overhead_breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0, abs=0.02)
        assert 0 < breakdown["useful"] <= 1

    def test_checkpoint_period_controls_count(self, counter):
        r2 = counter.execute(workers=4, checkpoint_period=2)
        r16 = counter.execute(workers=4, checkpoint_period=16)
        assert r2.runtime_stats.checkpoints == 16
        assert r16.runtime_stats.checkpoints == 2
        assert r2.output == r16.output


class TestMisspeculationRecovery:
    def test_injected_misspec_still_correct(self, counter):
        result = counter.execute(workers=4, misspec_period=10)
        assert result.output == counter.sequential.output
        stats = result.runtime_stats
        assert stats.misspec_count() == 3  # iterations 9, 19, 29
        assert stats.recoveries == 3

    def test_injected_misspec_slows_execution(self, counter):
        clean = counter.execute(workers=8)
        faulty = counter.execute(workers=8, misspec_period=8)
        assert faulty.total_wall_cycles > clean.total_wall_cycles

    def test_every_iteration_misspec_degrades_hard(self, counter):
        # §2: dependence-speculation-style constant squashing.
        result = counter.execute(workers=8, misspec_period=2)
        assert result.output == counter.sequential.output
        assert counter.speedup(result) < 1.0

    def test_recovered_iterations_accounted(self, counter):
        result = counter.execute(workers=4, misspec_period=10,
                                 checkpoint_period=8)
        inv = result.invocations[0]
        assert inv.recovered_iterations > 0
        assert inv.recovery_cycles > 0


class TestTimeline:
    def test_timeline_records_phases(self, counter):
        result = counter.execute(workers=3, record_timeline=True,
                                 misspec_period=20)
        timeline = result.timeline
        kinds = {e.kind for e in timeline.events}
        assert {"spawn", "iteration", "checkpoint", "join"} <= kinds
        assert "recovery" in kinds  # from the injected misspec
        text = timeline.render()
        assert "worker 0" in text and "legend" in text

    def test_iterations_attributed_round_robin(self, counter):
        result = counter.execute(workers=3, record_timeline=True)
        events = [e for e in result.timeline.events if e.kind == "iteration"]
        by_worker = {}
        for e in events:
            by_worker.setdefault(e.worker, []).append(e.label)
        assert set(by_worker) == {0, 1, 2}
        assert "i=0" in by_worker[0]
        assert "i=1" in by_worker[1]


class TestFallbacks:
    def test_zero_trip_invocation_runs_sequentially(self):
        from repro.bench.pipeline import prepare

        src = """
        int scratch[4];
        int out[64];
        int main(int n, int m) {
            for (int i = 0; i < n; i++) {
                scratch[0] = i;
                out[i] = scratch[0] * 2;
                for (int j = 0; j < 10; j++) { out[i] += j; }
            }
            /* second invocation with zero trips */
            for (int i = 0; i < m; i++) {
                scratch[0] = i;
                out[i] = scratch[0];
                for (int j = 0; j < 10; j++) { out[i] += j; }
            }
            printf("%d\\n", out[3]);
            return 0;
        }
        """
        prog = prepare(src, "zero_trip", args=(16, 0))
        result = prog.execute(workers=4)
        assert result.output == prog.sequential.output
