"""Epoch squash-and-recover regression tests (§5.2), on both backends.

A misspeculation in checkpoint epoch *k* must leave every earlier epoch
committed (their checkpoint records retired, their side effects in main
memory) and squash epoch *k* itself plus any speculative state beyond
it; the failed epoch then re-runs sequentially and execution resumes.
These tests pin that contract down for the simulated reference backend
and the real process-parallel backend alike.
"""

import pytest

from repro.bench.pipeline import prepare
from repro.parallel.backend import make_executor

from helpers import prepared_counter_program

BACKENDS = ("simulated", "process")


def _run(prog, backend, **kwargs):
    executor = make_executor(backend, prog.module, prog.plan,
                             workers=kwargs.pop("workers", 4),
                             record_timeline=True, **kwargs)
    result = executor.run(prog.entry, prog.ref_args)
    return executor, result


@pytest.mark.parametrize("backend", BACKENDS)
class TestInjectedEpochFailure:
    """Deterministic injected misspeculation: iteration 10 of 32 fails
    with checkpoint period 4, so epochs [0,4) and [4,8) commit before
    the failure and epoch [8,12) is squashed and recovered."""

    def _result(self, backend):
        prog = prepared_counter_program(32)
        return prog, _run(prog, backend, checkpoint_period=4,
                          misspec_period=11)

    def test_output_is_exact_after_recovery(self, backend):
        prog, (_ex, result) = self._result(backend)
        assert result.output == prog.sequential.output
        assert result.return_value == prog.sequential.return_value

    def test_earlier_epochs_stay_committed(self, backend):
        prog, (_ex, result) = self._result(backend)
        stats = result.runtime_stats
        failed = {m.iteration for m in stats.misspeculations}
        assert failed, "injection must have fired"
        first_failure = min(failed)
        committed = [r for r in stats.checkpoint_records
                     if r.end_iteration <= first_failure]
        # Every epoch that retired before the first failure was validated
        # and committed — none of them are re-run or rolled back.
        assert committed, "epochs before the failure must have committed"
        for rec in committed:
            assert not rec.speculative
            assert rec.end_iteration <= first_failure

    def test_failed_epoch_squashed_not_committed(self, backend):
        prog, (_ex, result) = self._result(backend)
        stats = result.runtime_stats
        first_failure = min(m.iteration for m in stats.misspeculations)
        # No checkpoint record spans the failing iteration as a
        # *speculative* commit: the epoch containing it was squashed and
        # its iterations re-executed sequentially (recovery).
        spanning = [r for r in stats.checkpoint_records
                    if r.start_iteration <= first_failure < r.end_iteration]
        assert not spanning
        assert stats.recoveries >= 1

    def test_recovery_events_on_timeline(self, backend):
        prog, (ex, result) = self._result(backend)
        kinds = {e.kind for e in ex.timeline.events}
        assert "misspec" in kinds
        assert "recovery" in kinds
        assert "checkpoint" in kinds


@pytest.mark.parametrize("backend", BACKENDS)
class TestGenuineEpochFailure:
    """A genuine loop-carried flow dependence (absent on the train
    input) trips privacy/control validation mid-run; recovery must
    yield the sequential result with earlier epochs still committed."""

    SRC = """
    int state[8];
    int out[128];
    int main(int n, int carry) {
        for (int i = 0; i < n; i++) {
            if (carry && i > 0) {
                out[i] = state[0];
            } else {
                out[i] = i;
            }
            state[0] = i * 7;
            for (int j = 0; j < 25; j++) { out[i] += j; }
        }
        printf("%d %d %d\\n", out[1], out[5], out[n-1]);
        return 0;
    }
    """

    def test_recovers_exactly(self, backend):
        prog = prepare(self.SRC, "epoch_recovery_genuine",
                       args=(24, 0), ref_args=(24, 1))
        _ex, result = _run(prog, backend)
        assert result.output == prog.sequential.output
        stats = result.runtime_stats
        assert stats.misspec_count() > 0
        assert stats.recoveries > 0
        # Committed epochs never include a squashed iteration.
        for m in stats.misspeculations:
            assert not any(
                r.start_iteration <= m.iteration < r.end_iteration
                for r in stats.checkpoint_records)
