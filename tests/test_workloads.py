"""The five evaluated programs: correctness, heap shapes, and parallel
equivalence on train-sized inputs.

The crown jewel: the MiniC MD5 is checked bit-exactly against hashlib.
"""

import pytest

from repro.bench.pipeline import run_sequential
from repro.classify import HeapKind
from repro.workloads import (
    ALL_WORKLOADS,
    ALVINN,
    BLACKSCHOLES,
    BY_NAME,
    DIJKSTRA,
    ENC_MD5,
    SWAPTIONS,
    reference_digests,
)


@pytest.fixture(scope="module")
def prepared():
    """Prepare every workload once (train inputs) for this module."""
    return {w.name: w.prepare_small() for w in ALL_WORKLOADS}


class TestRegistry:
    def test_five_programs(self):
        assert len(ALL_WORKLOADS) == 5
        assert set(BY_NAME) == {
            "alvinn", "dijkstra", "blackscholes", "swaptions", "enc_md5"}

    def test_inputs_distinct(self):
        for w in ALL_WORKLOADS:
            assert w.train != w.ref
            assert w.alt not in (w.train, w.ref)


class TestMD5Correctness:
    def test_digests_match_hashlib(self):
        nmsgs, msglen, seed = ENC_MD5.train
        seq = run_sequential(ENC_MD5.source, "md5", args=ENC_MD5.train)
        digests = "".join(seq.output).split()
        assert digests == reference_digests(nmsgs, msglen, seed)

    def test_parallel_digests_match_hashlib(self, prepared):
        prog = prepared["enc_md5"]
        result = prog.execute(workers=4)
        nmsgs, msglen, seed = ENC_MD5.train
        assert "".join(result.output).split() == \
            reference_digests(nmsgs, msglen, seed)


class TestParallelCorrectness:
    @pytest.mark.parametrize("name", [w.name for w in ALL_WORKLOADS])
    def test_output_matches_sequential(self, prepared, name):
        prog = prepared[name]
        result = prog.execute(workers=6)
        assert result.output == prog.sequential.output
        assert result.runtime_stats.misspec_count() == 0

    @pytest.mark.parametrize("name", [w.name for w in ALL_WORKLOADS])
    def test_speculation_survives_injected_misspec(self, prepared, name):
        prog = prepared[name]
        result = prog.execute(workers=4, misspec_period=7)
        assert result.output == prog.sequential.output
        assert result.runtime_stats.recoveries > 0


class TestHeapAssignments:
    """Table 3 shapes: which heaps are populated per program."""

    @pytest.mark.parametrize("name", [w.name for w in ALL_WORKLOADS])
    def test_expected_heap_population(self, prepared, name):
        prog = prepared[name]
        counts = prog.assignment.counts()
        for heap, populated in BY_NAME[name].expectations.heaps.items():
            if populated:
                assert counts[heap] > 0, f"{name}: expected {heap} objects"
            else:
                assert counts[heap] == 0, f"{name}: unexpected {heap} objects"

    def test_alvinn_matches_paper_row_exactly(self, prepared):
        # Paper Table 3: 052.alvinn — Private 4, Short-Lived 0,
        # Read-Only 4, Redux 3, Unrestricted 0.
        counts = prepared["alvinn"].assignment.counts()
        assert counts == {"private": 4, "short_lived": 0, "read_only": 4,
                          "redux": 3, "unrestricted": 0}

    def test_enc_md5_private_state_and_digest(self, prepared):
        a = prepared["enc_md5"].assignment
        assert "global:ST" in a.private_sites
        assert "global:digest" in a.private_sites

    def test_dijkstra_extras(self, prepared):
        extras = set(prepared["dijkstra"].assignment.extras())
        assert extras == {"Value", "Control", "I/O"}

    def test_dijkstra_value_predictions_on_queue(self, prepared):
        preds = prepared["dijkstra"].assignment.predictions
        assert {p.obj_site for p in preds} == {"global:Q"}
        assert all(p.value == 0 for p in preds)

    def test_blackscholes_no_private_reads(self, prepared):
        # Paper Table 3: blackscholes private reads = 0 B.
        prog = prepared["blackscholes"]
        result = prog.execute(workers=4)
        assert result.runtime_stats.private_read_bytes == 0
        assert result.runtime_stats.private_write_bytes > 0

    def test_swaptions_short_lived_dominate(self, prepared):
        # Paper: 15 of 17 privatized objects are short-lived.
        counts = prepared["swaptions"].assignment.counts()
        assert counts["short_lived"] >= counts["private"]

    def test_no_workload_needs_unrestricted(self, prepared):
        for name, prog in prepared.items():
            assert prog.assignment.counts()["unrestricted"] == 0, name


class TestInvocations:
    def test_alvinn_invoked_per_epoch(self, prepared):
        prog = prepared["alvinn"]
        result = prog.execute(workers=4)
        assert result.runtime_stats.invocations == prog.train_args[1]

    def test_single_invocation_programs(self, prepared):
        for name in ("dijkstra", "blackscholes", "swaptions", "enc_md5"):
            result = prepared[name].execute(workers=4)
            assert result.runtime_stats.invocations == 1, name


class TestProfileStability:
    def test_alt_input_gives_same_classification(self):
        """§6: profiling with a third input produces identical code."""
        w = DIJKSTRA
        from repro.bench.pipeline import prepare

        a = prepare(w.source, w.name, args=w.train, ref_args=w.train)
        b = prepare(w.source, w.name, args=w.alt, ref_args=w.alt)
        heaps_a = {s: k for s, k in a.assignment.site_heaps.items()}
        heaps_b = {s: k for s, k in b.assignment.site_heaps.items()}
        # Same sites, same heaps (site uids differ between compiles, so
        # compare the global: sites and the per-heap cardinalities).
        ga = {s: k for s, k in heaps_a.items() if s.startswith("global:")}
        gb = {s: k for s, k in heaps_b.items() if s.startswith("global:")}
        assert ga == gb
        assert a.assignment.counts() == b.assignment.counts()
