"""Differential parity: the process and pool backends must be
observationally identical to the simulated reference backend.

All backends feed the same fragment-based checkpoint commit path, so
parity should hold *by construction*; these tests enforce it end to end
on every evaluated workload: identical guest output and return value,
identical final memory state, identical ``RuntimeStats`` (including the
Table 3 row and every additive counter), identical misspeculation
events, and identical simulated-cycle wall clocks and timelines.

Every scenario runs three fresh pipelines (simulated, process, pool)
and compares both real backends against the simulated reference —
including injected and genuine misspeculation, and adaptive-controller
trajectories with sequential fallback.
"""

import pytest

from repro.adapt import SpeculationController
from repro.bench.pipeline import prepare
from repro.parallel.backend import make_executor
from repro.workloads import ALL_WORKLOADS

from helpers import prepared_counter_program


def _memory_digest(space):
    """Canonical snapshot of final live memory: (base, size, bytes) per
    object, sorted by address."""
    return sorted(
        (obj.base, obj.size, bytes(obj.data))
        for obj in space.live_objects()
    )


def _execute(program, backend, **kwargs):
    if kwargs.pop("adapt", False):
        # A fresh store-less controller per run: decisions are pure
        # functions of the epoch outcomes, so both backends must drive
        # identical state trajectories without any persistence.
        kwargs["controller"] = SpeculationController(
            loop=str(program.plan.ref), workload=program.name)
    executor = make_executor(backend, program.module, program.plan,
                             workers=kwargs.pop("workers", 4),
                             record_timeline=True, **kwargs)
    result = executor.run(program.entry, program.ref_args)
    return executor, result


def _timeline_tuples(executor):
    return [(e.kind, e.worker, e.start, e.end, e.label)
            for e in executor.timeline.events]


def _compare(sim_ex, sim, other_ex, other):
    """Bit-exact comparison of one real-backend run against the
    simulated reference run."""
    assert sim.output == other.output
    assert sim.return_value == other.return_value
    assert sim.total_wall_cycles == other.total_wall_cycles
    assert _memory_digest(sim_ex.interp.space) == \
        _memory_digest(other_ex.interp.space)

    s, p = sim.runtime_stats, other.runtime_stats
    assert s.table3_row() == p.table3_row()
    assert s.counter_snapshot() == p.counter_snapshot()
    assert s.misspec_count() == p.misspec_count()
    assert s.recoveries == p.recoveries
    assert [(m.kind, m.iteration, m.detail, m.injected)
            for m in s.misspeculations] == \
        [(m.kind, m.iteration, m.detail, m.injected)
         for m in p.misspeculations]
    assert [(r.start_iteration, r.end_iteration, r.private_bytes_copied,
             r.redux_bytes_merged, r.io_records_committed, r.dirty_pages)
            for r in s.checkpoint_records] == \
        [(r.start_iteration, r.end_iteration, r.private_bytes_copied,
          r.redux_bytes_merged, r.io_records_committed, r.dirty_pages)
         for r in p.checkpoint_records]
    assert _timeline_tuples(sim_ex) == _timeline_tuples(other_ex)
    assert sim.adapt == other.adapt


def _assert_parity(source, name, train, ref=None, **kwargs):
    """Run all three backends on fresh pipelines and compare the
    process and pool runs against the simulated reference."""
    sim_prog = prepare(source, name, args=train, ref_args=ref)
    proc_prog = prepare(source, name, args=train, ref_args=ref)
    pool_prog = prepare(source, name, args=train, ref_args=ref)
    sim_ex, sim = _execute(sim_prog, "simulated", **dict(kwargs))
    proc_ex, proc = _execute(proc_prog, "process", **dict(kwargs))
    pool_ex, pool = _execute(pool_prog, "pool", **dict(kwargs))

    _compare(sim_ex, sim, proc_ex, proc)
    _compare(sim_ex, sim, pool_ex, pool)
    return sim, proc


@pytest.mark.parametrize("workload", ALL_WORKLOADS,
                         ids=[w.name for w in ALL_WORKLOADS])
def test_workload_parity(workload):
    """All five evaluated programs: the process backend reproduces the
    simulated backend bit for bit (train input keeps runtimes sane)."""
    sim, _proc = _assert_parity(workload.source, workload.name,
                                train=workload.train, ref=workload.train)
    assert sim.output  # the run actually did something


class TestCounterProgramParity:
    def test_clean_run(self):
        prog = prepared_counter_program(32)
        _assert_parity(prog.source, "counter", train=(32,),
                       checkpoint_period=5)

    def test_injected_misspeculation(self):
        """Parity must survive squash/recovery: injected misspecs at a
        fixed period hit identical iterations on both backends."""
        prog = prepared_counter_program(32)
        sim, proc = _assert_parity(prog.source, "counter", train=(32,),
                                   misspec_period=10)
        assert sim.runtime_stats.misspec_count() == 3

    def test_injected_misspeculation_offset_period(self):
        prog = prepared_counter_program(32)
        sim, _ = _assert_parity(prog.source, "counter", train=(32,),
                                misspec_period=7, checkpoint_period=4)
        assert sim.runtime_stats.misspec_count() > 0


class TestAdaptiveParity:
    """The adaptive controller must preserve parity: decisions are pure
    functions of the (identical) epoch-outcome sequence, so both
    backends follow the same epoch-size trajectory, and the adaptive
    run's final output is bit-exact vs the fixed-policy run."""

    @pytest.mark.parametrize("workload", ALL_WORKLOADS,
                             ids=[w.name for w in ALL_WORKLOADS])
    def test_workload_adaptive_parity(self, workload):
        sim, proc = _assert_parity(workload.source, workload.name,
                                   train=workload.train, ref=workload.train,
                                   adapt=True, misspec_period=6,
                                   misspec_burst=18)
        assert sim.adapt is not None
        # Bit-exact vs the fixed-policy run under the same injection.
        fixed_prog = prepare(workload.source, workload.name,
                             args=workload.train, ref_args=workload.train)
        _, fixed = _execute(fixed_prog, "simulated", misspec_period=6,
                            misspec_burst=18)
        assert sim.output == fixed.output
        assert sim.return_value == fixed.return_value

    def test_counter_adaptive_storm_with_fallback(self):
        """Sustained storm: shrink, fallback, sequential spans — all in
        lockstep across backends."""
        prog = prepared_counter_program(64)
        sim, proc = _assert_parity(prog.source, "counter", train=(64,),
                                   adapt=True, misspec_period=2)
        assert sim.adapt["fallbacks"] > 0
        assert sim.adapt["sequential_iterations"] > 0
        assert [(i.sequential_iterations, i.sequential_cycles)
                for i in sim.invocations] == \
            [(i.sequential_iterations, i.sequential_cycles)
             for i in proc.invocations]


class TestGenuineMisspeculationParity:
    """Genuine (profile-violating) misspeculation paths recover to the
    identical state on both backends."""

    SRC = """
    int state[8];
    int out[128];
    int main(int n, int carry) {
        for (int i = 0; i < n; i++) {
            if (carry && i > 0) {
                out[i] = state[0];
            } else {
                out[i] = i;
            }
            state[0] = i * 7;
            for (int j = 0; j < 25; j++) { out[i] += j; }
        }
        printf("%d %d %d\\n", out[1], out[5], out[n-1]);
        return 0;
    }
    """

    def test_privacy_violation_parity(self):
        sim, _ = _assert_parity(self.SRC, "parity_privacy",
                                train=(24, 0), ref=(24, 1))
        assert sim.runtime_stats.misspec_count() > 0
        assert sim.runtime_stats.recoveries > 0
