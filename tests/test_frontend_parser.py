"""MiniC parser: AST shapes and syntax errors."""

import pytest

from repro.frontend import ast
from repro.frontend.lexer import CompileError
from repro.frontend.parser import parse


class TestTopLevel:
    def test_struct_def(self):
        prog = parse("struct p { int x; int y; };")
        assert len(prog.structs) == 1
        assert prog.structs[0].name == "p"
        assert [f[1] for f in prog.structs[0].fields] == ["x", "y"]

    def test_recursive_struct_pointer(self):
        prog = parse("struct n { int v; struct n* next; };")
        fty, fname = prog.structs[0].fields[1]
        assert fname == "next" and fty.pointer_depth == 1 and fty.is_struct

    def test_global_scalar(self):
        prog = parse("int g;")
        assert prog.globals[0].name == "g"

    def test_global_array(self):
        prog = parse("double m[4][8];")
        assert prog.globals[0].type.array_dims == (4, 8)

    def test_global_with_init(self):
        prog = parse("int g = 42;")
        assert isinstance(prog.globals[0].init, ast.IntLit)

    def test_const_global(self):
        prog = parse("const int g = 1;")
        assert prog.globals[0].is_const

    def test_function(self):
        prog = parse("int f(int a, double b) { return a; }")
        fn = prog.functions[0]
        assert fn.name == "f"
        assert [p.name for p in fn.params] == ["a", "b"]

    def test_void_params(self):
        prog = parse("void f(void) { }")
        assert prog.functions[0].params == []

    def test_pointer_return(self):
        prog = parse("int* f() { return 0; }")
        assert prog.functions[0].return_type.pointer_depth == 1


class TestStatements:
    def _body(self, src):
        return parse("void f() { " + src + " }").functions[0].body.statements

    def test_decl_with_init(self):
        (stmt,) = self._body("int x = 1;")
        assert isinstance(stmt, ast.DeclStmt) and stmt.name == "x"

    def test_multi_decl(self):
        (stmt,) = self._body("int x = 1, y = 2;")
        assert isinstance(stmt, ast.Block)
        assert [s.name for s in stmt.statements] == ["x", "y"]

    def test_multi_decl_with_star(self):
        (stmt,) = self._body("int x, *p;")
        assert stmt.statements[1].type.pointer_depth == 1

    def test_if_else(self):
        (stmt,) = self._body("if (1) { } else { }")
        assert isinstance(stmt, ast.If) and stmt.otherwise is not None

    def test_dangling_else(self):
        (stmt,) = self._body("if (1) if (2) ; else ;")
        assert stmt.otherwise is None  # else binds to inner if
        assert stmt.then.otherwise is not None

    def test_while(self):
        (stmt,) = self._body("while (x) { }")
        assert isinstance(stmt, ast.While)

    def test_for_full(self):
        (stmt,) = self._body("for (int i = 0; i < 10; i++) { }")
        assert isinstance(stmt.init, ast.DeclStmt)
        assert isinstance(stmt.cond, ast.Binary)
        assert isinstance(stmt.step, ast.Unary)

    def test_for_empty_clauses(self):
        (stmt,) = self._body("for (;;) { break; }")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_break_continue_return(self):
        stmts = self._body("while (1) { break; continue; } return 3;")
        assert isinstance(stmts[1], ast.Return)


class TestExpressions:
    def _expr(self, src):
        body = parse(f"void f() {{ x = {src}; }}").functions[0].body
        return body.statements[0].expr.value

    def test_precedence_mul_over_add(self):
        e = self._expr("1 + 2 * 3")
        assert e.op == "+" and e.rhs.op == "*"

    def test_precedence_shift_vs_add(self):
        e = self._expr("1 << 2 + 3")
        assert e.op == "<<" and e.rhs.op == "+"

    def test_logical_lowest(self):
        e = self._expr("a == 1 && b == 2")
        assert e.op == "&&"

    def test_assignment_right_associative(self):
        body = parse("void f() { a = b = 1; }").functions[0].body
        outer = body.statements[0].expr
        assert isinstance(outer.value, ast.Assign)

    def test_ternary(self):
        e = self._expr("a ? 1 : 2")
        assert isinstance(e, ast.Conditional)

    def test_unary_chain(self):
        e = self._expr("-~!x")
        assert e.op == "-" and e.operand.op == "~" and e.operand.operand.op == "!"

    def test_deref_and_addr(self):
        e = self._expr("*&y")
        assert e.op == "*" and e.operand.op == "&"

    def test_postfix_increment(self):
        e = self._expr("y++")
        assert e.op == "p++"

    def test_index_chain(self):
        e = self._expr("a[1][2]")
        assert isinstance(e, ast.Index) and isinstance(e.base, ast.Index)

    def test_member_and_arrow(self):
        e = self._expr("a.b->c")
        assert e.arrow and not e.base.arrow

    def test_call_args(self):
        e = self._expr("f(1, g(2), 3)")
        assert isinstance(e, ast.CallExpr) and len(e.args) == 3
        assert isinstance(e.args[1], ast.CallExpr)

    def test_cast(self):
        e = self._expr("(double)y")
        assert isinstance(e, ast.CastExpr) and e.type.base == "double"

    def test_cast_to_struct_pointer(self):
        e = self._expr("(struct n*)p")
        assert e.type.is_struct and e.type.pointer_depth == 1

    def test_parenthesized_not_cast(self):
        e = self._expr("(y) + 1")
        assert e.op == "+"

    def test_sizeof(self):
        e = self._expr("sizeof(int)")
        assert isinstance(e, ast.SizeofExpr)

    def test_compound_assign(self):
        body = parse("void f() { a += 2; }").functions[0].body
        assert body.statements[0].expr.op == "+="


class TestErrors:
    @pytest.mark.parametrize("src", [
        "int f( { }",
        "int f() { return }",
        "int f() { int 3x; }",
        "struct { int x; };",
        "int f() { a[1; }",
        "int a[x];",
    ])
    def test_rejected(self, src):
        with pytest.raises(CompileError):
            parse(src)
