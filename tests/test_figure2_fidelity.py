"""Figure 2 fidelity: the transformed dijkstra contains exactly the
structures the paper's listing shows.

Figure 2b inserts, relative to the sequential code:
  * ``h_alloc(sizeof(node), SHORTLIVED)`` in enqueueQ (line 11-12);
  * ``private_read``/``private_write`` around Q and pathcost accesses
    (lines 15, 19, 25, 31, 58, 65, 70);
  * a ``check_heap(qKill, SHORTLIVED)`` separation check in dequeueQ
    (line 29), while direct-global checks are elided;
  * ``h_dealloc(qKill, SHORTLIVED)`` in dequeueQ (line 35);
  * value-prediction validation of Q's head/tail at the latch
    (lines 79-80);
  * heap allocation of the globals: pathcost PRIVATE, adj READONLY
    (lines 42-43).
"""

import pytest

from repro.classify import HeapKind
from repro.ir.instructions import Call
from repro.workloads import DIJKSTRA


@pytest.fixture(scope="module")
def prog():
    return DIJKSTRA.prepare_small()


def _calls(fn, name):
    return [i for i in fn.instructions()
            if isinstance(i, Call) and i.callee.name == name]


class TestEnqueue:
    def test_node_allocated_from_short_lived_heap(self, prog):
        enqueue = prog.module.function_named("enqueueQ")
        allocs = _calls(enqueue, "h_alloc")
        assert len(allocs) == 1
        assert allocs[0].operands[1].value == int(HeapKind.SHORTLIVED)

    def test_queue_accesses_have_privacy_checks(self, prog):
        enqueue = prog.module.function_named("enqueueQ")
        assert _calls(enqueue, "private_read")   # reads Q.head / Q.tail
        assert _calls(enqueue, "private_write")  # writes Q.head / Q.tail


class TestDequeue:
    def test_node_freed_into_short_lived_heap(self, prog):
        dequeue = prog.module.function_named("dequeueQ")
        deallocs = _calls(dequeue, "h_dealloc")
        assert len(deallocs) == 1
        assert deallocs[0].operands[1].value == int(HeapKind.SHORTLIVED)

    def test_separation_check_on_pointer_from_memory(self, prog):
        """qKill comes out of Q.head — unprovable, so checked (fig. 2b
        line 29)."""
        dequeue = prog.module.function_named("dequeueQ")
        checks = _calls(dequeue, "check_heap")
        assert any(c.operands[1].value == int(HeapKind.SHORTLIVED)
                   for c in checks)

    def test_control_speculation_guards_underflow_path(self, prog):
        dequeue = prog.module.function_named("dequeueQ")
        assert _calls(dequeue, "misspec")


class TestMainLoop:
    def test_pathcost_accesses_validated_not_checked(self, prog):
        """pathcost is accessed through the global directly: privacy
        checks are needed, separation checks are elided (fig. 2b: 'other
        checks are proved successful at compile time')."""
        main = prog.module.function_named("main")
        assert _calls(main, "private_read")
        assert _calls(main, "private_write")
        assert prog.plan.checks.separation_elided > 0

    def test_latch_validates_queue_emptiness(self, prog):
        latch = prog.plan.loop.latches[0]
        preds = [i for i in latch.instructions
                 if isinstance(i, Call) and i.callee.name == "predict_value"]
        assert len(preds) == 2  # Q.head and Q.tail, both == NULL
        assert all(p.operands[2].value == 0 for p in preds)

    def test_globals_assigned_as_in_figure(self, prog):
        placements = prog.plan.global_placements
        assert placements["pathcost"] is HeapKind.PRIVATE
        assert placements["Q"] is HeapKind.PRIVATE
        assert placements["adj"] is HeapKind.READONLY

    def test_adj_reads_are_unvalidated(self, prog):
        """Read-only heap accesses need no privacy metadata (§4.6 only
        instruments the private heap)."""
        result = prog.execute(workers=2)
        # adj is read ~m times per relaxation; if those were counted as
        # private reads the byte count would dwarf pathcost's.
        pathcost_bytes = 32 * 4
        assert result.runtime_stats.private_read_bytes < \
            prog.sequential.cycles  # sanity: bounded
        stats = result.runtime_stats
        assert stats.separation_checks > 0  # runtime executed checks
