"""Type system: sizes, alignment, struct layout, integer wrapping."""

import pytest

from repro.ir.types import (
    BOOL,
    F32,
    F64,
    I8,
    I16,
    I32,
    I64,
    U8,
    U32,
    U64,
    VOID,
    ArrayType,
    FunctionType,
    IntType,
    IRTypeError,
    PointerType,
    StructField,
    StructType,
    TypeContext,
    ptr,
    types_compatible,
)


class TestScalarSizes:
    @pytest.mark.parametrize("ty,size", [
        (I8, 1), (I16, 2), (I32, 4), (I64, 8),
        (U8, 1), (U32, 4), (U64, 8), (F32, 4), (F64, 8),
    ])
    def test_size(self, ty, size):
        assert ty.size == size

    @pytest.mark.parametrize("ty", [I8, I16, I32, I64, F32, F64])
    def test_alignment_is_size(self, ty):
        assert ty.align == ty.size

    def test_bool_is_one_byte(self):
        assert BOOL.size == 1

    def test_pointer_is_eight_bytes(self):
        assert ptr(I32).size == 8
        assert ptr().align == 8

    def test_void_has_no_size(self):
        with pytest.raises(IRTypeError):
            _ = VOID.size

    def test_invalid_width_rejected(self):
        with pytest.raises(IRTypeError):
            IntType(24)


class TestWrapping:
    def test_signed_overflow_wraps(self):
        assert I32.wrap(2**31) == -(2**31)
        assert I32.wrap(2**32 + 5) == 5

    def test_signed_negative(self):
        assert I8.wrap(-1) == -1
        assert I8.wrap(255) == -1
        assert I8.wrap(128) == -128

    def test_unsigned_wraps_to_positive(self):
        assert U32.wrap(-1) == 2**32 - 1
        assert U32.wrap(2**32) == 0

    def test_ranges(self):
        assert I32.min_value == -(2**31)
        assert I32.max_value == 2**31 - 1
        assert U32.min_value == 0
        assert U32.max_value == 2**32 - 1

    def test_identity_within_range(self):
        for v in (-128, -1, 0, 1, 127):
            assert I8.wrap(v) == v


class TestArrays:
    def test_size(self):
        assert ArrayType(I32, 10).size == 40

    def test_nested(self):
        grid = ArrayType(ArrayType(I32, 4), 3)
        assert grid.size == 48
        assert grid.align == 4

    def test_zero_length(self):
        assert ArrayType(I64, 0).size == 0

    def test_negative_rejected(self):
        with pytest.raises(IRTypeError):
            ArrayType(I8, -1)


class TestStructLayout:
    def test_c_style_padding(self):
        st = StructType("s", [StructField("a", I8), StructField("b", I32)])
        assert st.field_offset(0) == 0
        assert st.field_offset(1) == 4  # padded to int alignment
        assert st.size == 8

    def test_tail_padding(self):
        st = StructType("s", [StructField("a", I32), StructField("b", I8)])
        assert st.size == 8  # rounded up to align 4

    def test_pointer_field_alignment(self):
        st = StructType("node", [StructField("v", I32),
                                 StructField("next", ptr())])
        assert st.field_offset(1) == 8
        assert st.size == 16
        assert st.align == 8

    def test_field_lookup(self):
        st = StructType("s", [StructField("x", I32), StructField("y", F64)])
        assert st.field_index("y") == 1
        assert st.field_type(1) == F64
        with pytest.raises(IRTypeError):
            st.field_index("z")

    def test_recursive_struct_via_context(self):
        ctx = TypeContext()
        node = ctx.declare_struct("node")
        ctx.define_struct("node", [StructField("v", I32),
                                   StructField("next", PointerType(node))])
        assert node.size == 16

    def test_identity_by_name(self):
        a = StructType("same", [StructField("x", I32)])
        b = StructType("same", [])
        assert a == b
        assert hash(a) == hash(b)

    def test_empty_struct(self):
        assert StructType("empty", []).size == 0


class TestCompatibility:
    def test_same_type(self):
        assert types_compatible(I32, I32)

    def test_any_two_pointers(self):
        assert types_compatible(ptr(I8), ptr(F64))

    def test_different_ints(self):
        assert not types_compatible(I32, I64)
        assert not types_compatible(I32, U32)

    def test_int_vs_float(self):
        assert not types_compatible(I64, F64)


class TestFunctionType:
    def test_str(self):
        ft = FunctionType(I32, (I64, F64))
        assert "i32" in str(ft)

    def test_variadic_str(self):
        ft = FunctionType(VOID, (ptr(I8),), variadic=True)
        assert "..." in str(ft)

    def test_no_size(self):
        with pytest.raises(IRTypeError):
            _ = FunctionType(VOID, ()).size


class TestTypeContext:
    def test_unknown_struct_raises(self):
        with pytest.raises(IRTypeError):
            TypeContext().get_struct("missing")

    def test_declare_is_idempotent(self):
        ctx = TypeContext()
        a = ctx.declare_struct("s")
        assert ctx.declare_struct("s") is a
