"""The Privateer transformation: allocation replacement, check insertion,
elision, control speculation, value prediction."""

import pytest

from repro.classify import HeapKind, classify
from repro.frontend import compile_minic
from repro.interp import Interpreter
from repro.ir import verify_module
from repro.ir.instructions import Alloca, Call
from repro.profiling import profile_execution_time, profile_loop
from repro.transform import PrivateerTransform, SelectionError
from repro.workloads import DIJKSTRA


def _transform(src, args, name="t"):
    mod = compile_minic(src, name)
    report = profile_execution_time(mod, args=args)
    ref = report.hottest(top_level_only=False)[0].ref
    profile = profile_loop(mod, ref, args=args)
    assignment = classify(profile)
    plan = PrivateerTransform(mod, ref, profile, assignment).run()
    return mod, plan


def _calls_to(mod, name):
    return [i for fn in mod.defined_functions() for i in fn.instructions()
            if isinstance(i, Call) and i.callee.name == name]


QUEUE_SRC = """
struct n { int v; struct n* next; };
struct n* head;
int out[128];

int main(int n) {
    for (int i = 0; i < n; i++) {
        struct n* c = (struct n*)malloc(sizeof(struct n));
        c->v = i * 3; c->next = head; head = c;
        int acc = 0;
        while (head != 0) {
            acc += head->v;
            struct n* d = head;
            head = head->next;
            free(d);
        }
        out[i] = acc;
    }
    int total = 0;
    for (int i = 0; i < n; i++) { total = total + out[i]; }
    printf("%d\\n", total);
    return total;
}
"""


class TestAllocationReplacement:
    def test_malloc_becomes_h_alloc(self):
        mod, plan = _transform(QUEUE_SRC, (24,))
        assert not _calls_to(mod, "malloc")
        h_allocs = _calls_to(mod, "h_alloc")
        assert h_allocs
        kinds = {int(c.operands[1].value) for c in h_allocs}
        assert int(HeapKind.SHORTLIVED) in kinds

    def test_free_becomes_h_dealloc(self):
        mod, plan = _transform(QUEUE_SRC, (24,))
        assert not _calls_to(mod, "free")
        assert _calls_to(mod, "h_dealloc")

    def test_globals_recorded_for_relocation(self):
        mod, plan = _transform(QUEUE_SRC, (24,))
        assert plan.global_placements["head"] is HeapKind.PRIVATE
        assert plan.global_placements["out"] is HeapKind.PRIVATE

    def test_classified_alloca_replaced(self):
        src = """
        int out[64];
        int work(int i) {
            int tmp[8];
            for (int j = 0; j < 8; j++) { tmp[j] = i + j; }
            return tmp[7];
        }
        int main(int n) {
            for (int i = 0; i < n; i++) { out[i] = work(i); }
            return 0;
        }
        """
        mod, plan = _transform(src, (24,))
        work = mod.function_named("work")
        assert not any(isinstance(i, Alloca) for i in work.instructions())
        # h_alloc at entry, h_dealloc before return
        assert any(c.callee.name == "h_alloc" for c in work.instructions()
                   if isinstance(c, Call))
        assert any(c.callee.name == "h_dealloc" for c in work.instructions()
                   if isinstance(c, Call))

    def test_transformed_module_verifies(self):
        mod, _ = _transform(QUEUE_SRC, (24,))
        verify_module(mod)

    def test_transformed_runs_sequentially_same_result(self):
        # Neutral intrinsics: the transformed module must still compute
        # the original answer when run without the runtime.
        mod, _ = _transform(QUEUE_SRC, (24,))
        plain = compile_minic(QUEUE_SRC)
        assert Interpreter(mod).run(args=(24,)) == \
            Interpreter(plain).run(args=(24,))


class TestChecks:
    def test_privacy_checks_inserted(self):
        mod, plan = _transform(QUEUE_SRC, (24,))
        assert plan.checks.private_read > 0
        assert plan.checks.private_write > 0
        assert _calls_to(mod, "private_read")
        assert _calls_to(mod, "private_write")

    def test_separation_checks_on_unprovable_pointers(self):
        mod, plan = _transform(QUEUE_SRC, (24,))
        # head->v etc. go through pointers loaded from memory.
        assert plan.checks.separation > 0

    def test_direct_global_accesses_elided(self):
        src = """
        int scratch[16];
        int out[64];
        int main(int n) {
            for (int i = 0; i < n; i++) {
                for (int j = 0; j < 16; j++) { scratch[j] = i + j; }
                out[i] = scratch[i % 16];
            }
            return 0;
        }
        """
        mod, plan = _transform(src, (24,))
        # Every access goes through a named global: all separation checks
        # are provable at compile time.
        assert plan.checks.separation == 0
        assert plan.checks.separation_elided > 0

    def test_redux_update_markers(self):
        src = """
        double total;
        double data[64];
        int main(int n) {
            for (int i = 0; i < 64; i++) { data[i] = i * 0.5; }
            for (int i = 0; i < n; i++) {
                for (int j = 0; j < 64; j++) { total += data[j]; }
            }
            return (int)total;
        }
        """
        mod, plan = _transform(src, (24,))
        assert plan.checks.redux_update == 1
        assert plan.redux_objects["global:total"].operator == "FADD"
        assert plan.redux_objects["global:total"].element_size == 8
        assert plan.redux_objects["global:total"].is_float


class TestSpeculationSupport:
    def test_value_prediction_checks_in_latch(self):
        mod, plan = _transform(QUEUE_SRC, (24,))
        assert plan.checks.predict_value >= 1
        latch = plan.loop.latches[0]
        assert any(isinstance(i, Call) and i.callee.name == "predict_value"
                   for i in latch.instructions)

    def test_control_speculation_on_cold_block(self):
        src = """
        int out[64];
        int main(int n) {
            for (int i = 0; i < n; i++) {
                if (i > 1000000) { out[0] = 1; }  /* never on train */
                out[i] = i;
                for (int j = 0; j < 8; j++) { out[i] += j; }
            }
            return 0;
        }
        """
        mod, plan = _transform(src, (24,))
        assert plan.checks.control_misspec >= 1
        assert _calls_to(mod, "misspec")

    def test_io_deferral_flag(self):
        src = QUEUE_SRC.replace("out[i] = acc;",
                                'out[i] = acc; printf("%d\\n", acc);')
        mod, plan = _transform(src, (24,))
        assert plan.defer_io

    def test_no_io_deferral_when_prints_outside_loop(self):
        mod, plan = _transform(QUEUE_SRC, (24,))
        assert not plan.defer_io


class TestSelectionRejections:
    def _expect_rejection(self, src, args, match):
        mod = compile_minic(src)
        report = profile_execution_time(mod, args=args)
        ref = report.hottest(top_level_only=False)[0].ref
        profile = profile_loop(mod, ref, args=args)
        assignment = classify(profile)
        with pytest.raises(SelectionError, match=match):
            PrivateerTransform(mod, ref, profile, assignment).run()

    def test_unpredictable_flow_dep_rejected(self):
        self._expect_rejection("""
        int state;
        int out[128];
        int main(int n) {
            for (int i = 0; i < n; i++) {
                out[i] = state;
                state = state + i;
                for (int j = 0; j < 30; j++) { out[i] += j; }
            }
            return 0;
        }
        """, (40,), "unrestricted")

    def test_scalar_carried_rejected(self):
        self._expect_rejection("""
        int out[128];
        int main(int n) {
            int prev = 0;
            for (int i = 0; i < n; i++) {
                out[i] = prev;
                prev = out[i] + i;
                for (int j = 0; j < 30; j++) { out[i] += 1; }
            }
            return prev;
        }
        """, (40,), "scalar|live-out")

    def test_side_exit_rejected(self):
        self._expect_rejection("""
        int out[128];
        int main(int n) {
            for (int i = 0; i < n; i++) {
                out[i] = i;
                for (int j = 0; j < 30; j++) { out[i] += j; }
                if (out[i] > 100000) { break; }
            }
            return 0;
        }
        """, (40,), "exit")

    def test_rand_in_region_rejected(self):
        self._expect_rejection("""
        int out[128];
        int main(int n) {
            for (int i = 0; i < n; i++) {
                out[i] = (int)rand_int() % 7;
                for (int j = 0; j < 30; j++) { out[i] += j; }
            }
            return 0;
        }
        """, (40,), "rand_int")


class TestSelectionHelpers:
    def test_heaps_compatible(self):
        from repro.classify.classifier import HeapAssignment
        from repro.transform import heaps_compatible

        a = HeapAssignment(loop=None, site_heaps={"o": HeapKind.PRIVATE})
        b = HeapAssignment(loop=None, site_heaps={"o": HeapKind.READONLY})
        c = HeapAssignment(loop=None, site_heaps={"p": HeapKind.PRIVATE})
        assert not heaps_compatible(a, b)
        assert heaps_compatible(a, c)

    def test_select_loops_picks_transformable(self):
        mod = compile_minic(DIJKSTRA.source, "dj")
        report = profile_execution_time(mod, args=DIJKSTRA.train)
        candidates = []
        for rec in report.hottest(top_level_only=False)[:3]:
            prof = profile_loop(mod, rec.ref, args=DIJKSTRA.train)
            candidates.append((rec.ref, rec.cycles, prof, classify(prof)))
        from repro.transform import select_loops

        selected = select_loops(mod, candidates)
        assert len(selected) >= 1
        # the hot src loop is among the selected
        assert any(r.function == "main" for r, _p, _a in selected)
