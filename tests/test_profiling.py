"""Profilers: hot loops, footprints, flow deps, lifetimes, predictions."""

import pytest

from repro.frontend import compile_minic
from repro.profiling import LoopRef, profile_execution_time, profile_loop


def _hot_profile(src, args=()):
    mod = compile_minic(src)
    report = profile_execution_time(mod, args=args)
    ref = report.hottest(top_level_only=False)[0].ref
    return mod, report, profile_loop(mod, ref, args=args)


class TestExecutionTimeProfiler:
    SRC = """
    int a[64];
    int main(int n) {
        for (int i = 0; i < n; i++) {
            for (int j = 0; j < 32; j++) { a[j % 64] += i; }
        }
        for (int i = 0; i < 3; i++) { a[i] = 0; }
        return 0;
    }
    """

    def test_hot_loop_is_hottest(self):
        mod = compile_minic(self.SRC)
        report = profile_execution_time(mod, args=(20,))
        ranked = report.hottest()
        assert ranked[0].cycles > ranked[1].cycles
        assert report.coverage(ranked[0].ref) > 0.5

    def test_trip_counts(self):
        mod = compile_minic(self.SRC)
        report = profile_execution_time(mod, args=(20,))
        by_ref = {r.ref.header: r for r in report.records}
        outer = by_ref["for.cond"]
        assert outer.invocations == 1
        assert outer.iterations == 20
        inner = by_ref["for.cond.1"]
        assert inner.invocations == 20
        assert inner.iterations == 20 * 32

    def test_inclusive_cycles(self):
        mod = compile_minic(self.SRC)
        report = profile_execution_time(mod, args=(20,))
        by_ref = {r.ref.header: r for r in report.records}
        assert by_ref["for.cond"].cycles >= by_ref["for.cond.1"].cycles

    def test_loop_depths(self):
        mod = compile_minic(self.SRC)
        report = profile_execution_time(mod, args=(5,))
        by_ref = {r.ref.header: r for r in report.records}
        assert by_ref["for.cond"].depth == 1
        assert by_ref["for.cond.1"].depth == 2


class TestFootprints:
    def test_read_write_sites(self):
        _, _, prof = _hot_profile("""
        int src_arr[32];
        int dst[32];
        int main(int n) {
            for (int i = 0; i < 32; i++) { src_arr[i] = i; }
            for (int i = 0; i < n; i++) {
                for (int j = 0; j < 32; j++) { dst[j] = dst[j] + src_arr[j]; }
            }
            return 0;
        }
        """, args=(40,))
        assert "global:src_arr" in prof.read_sites
        assert "global:dst" in prof.write_sites
        assert "global:src_arr" not in prof.write_sites

    def test_callee_accesses_attributed(self):
        _, _, prof = _hot_profile("""
        int g[8];
        void touch(int i) { g[i % 8] = i; }
        int main(int n) {
            for (int i = 0; i < n; i++) { touch(i); touch(i + 1); }
            return 0;
        }
        """, args=(50,))
        assert "global:g" in prof.write_sites

    def test_reduction_footprint_separate(self):
        _, _, prof = _hot_profile("""
        long total;
        int data[64];
        int main(int n) {
            for (int i = 0; i < 64; i++) { data[i] = i; }
            for (int i = 0; i < n; i++) {
                for (int j = 0; j < 64; j++) { total += data[j]; }
            }
            return 0;
        }
        """, args=(30,))
        assert "global:total" in prof.redux_sites
        assert "global:total" not in prof.read_sites
        assert "global:total" not in prof.write_sites
        assert prof.redux_ops["global:total"] == "ADD"


class TestFlowDeps:
    def test_cross_iteration_flow_detected(self):
        _, _, prof = _hot_profile("""
        int state;
        int out[128];
        int main(int n) {
            for (int i = 0; i < n; i++) {
                out[i] = state;      /* reads last iteration's write */
                state = i;
            }
            return 0;
        }
        """, args=(60,))
        deps = prof.deps_on("global:state")
        assert deps

    def test_intra_iteration_write_then_read_is_not_dep(self):
        _, _, prof = _hot_profile("""
        int scratch;
        int out[128];
        int main(int n) {
            for (int i = 0; i < n; i++) {
                scratch = i * 2;
                out[i] = scratch;
            }
            return 0;
        }
        """, args=(60,))
        assert not prof.deps_on("global:scratch")

    def test_writes_outside_loop_reset_history(self):
        _, _, prof = _hot_profile("""
        int g;
        int out[8];
        int main(int n) {
            g = 5;
            for (int i = 0; i < n; i++) {
                for (int j = 0; j < 200; j++) { out[j % 8] += g; }
            }
            return 0;
        }
        """, args=(8,))
        # g written only before the loop: reads are live-in, not deps.
        assert not prof.deps_on("global:g")


class TestLifetimes:
    MALLOC_LOOP = """
    struct n { int v; struct n* next; };
    int out[128];
    int main(int n) {
        for (int i = 0; i < n; i++) {
            struct n* c = (struct n*)malloc(sizeof(struct n));
            c->v = i;
            out[i] = c->v;
            %s
        }
        return 0;
    }
    """

    def test_freed_same_iteration_is_short_lived(self):
        _, _, prof = _hot_profile(self.MALLOC_LOOP % "free(c);", args=(40,))
        assert len(prof.short_lived_sites) == 1

    def test_leaked_object_not_short_lived(self):
        _, _, prof = _hot_profile(self.MALLOC_LOOP % "", args=(40,))
        assert not prof.short_lived_sites

    def test_callee_stack_arrays_short_lived(self):
        _, _, prof = _hot_profile("""
        int out[128];
        int work(int i) {
            int tmp[16];
            for (int j = 0; j < 16; j++) { tmp[j] = i + j; }
            return tmp[15];
        }
        int main(int n) {
            for (int i = 0; i < n; i++) { out[i] = work(i); }
            return 0;
        }
        """, args=(40,))
        assert len(prof.short_lived_sites) == 1

    def test_object_kept_across_iterations_not_short_lived(self):
        _, _, prof = _hot_profile("""
        struct n { int v; struct n* next; };
        struct n* keep;
        int out[128];
        int main(int n) {
            for (int i = 0; i < n; i++) {
                struct n* c = (struct n*)malloc(sizeof(struct n));
                c->v = i;
                if (keep != 0) { out[i] = keep->v; free(keep); }
                keep = c;    /* survives into the next iteration */
            }
            return 0;
        }
        """, args=(40,))
        assert not prof.short_lived_sites


class TestValuePrediction:
    def test_always_null_location_predicted(self):
        _, _, prof = _hot_profile("""
        struct n { int v; struct n* next; };
        struct n* head;
        int out[128];
        int main(int n) {
            for (int i = 0; i < n; i++) {
                struct n* c = (struct n*)malloc(sizeof(struct n));
                c->v = i; c->next = head; head = c;
                int acc = 0;
                while (head != 0) {
                    acc += head->v;
                    struct n* d = head;
                    head = head->next;
                    free(d);
                }
                out[i] = acc;
            }
            return 0;
        }
        """, args=(40,))
        preds = list(prof.value_predictions)
        assert any(p.obj_site == "global:head" and p.value == 0 for p in preds)

    def test_varying_location_not_predicted(self):
        _, _, prof = _hot_profile("""
        int state;
        int out[128];
        int main(int n) {
            for (int i = 0; i < n; i++) {
                out[i] = state;
                state = i;        /* different value every iteration */
            }
            return 0;
        }
        """, args=(40,))
        assert not prof.value_predictions


class TestCoverageAndIO:
    def test_io_sites_recorded(self):
        _, _, prof = _hot_profile("""
        int out[64];
        int main(int n) {
            for (int i = 0; i < n; i++) {
                out[i] = i;
                printf("%d\\n", i);
                for (int j = 0; j < 20; j++) { out[i] += j; }
            }
            return 0;
        }
        """, args=(30,))
        assert len(prof.io_sites) == 1

    def test_unexecuted_region_blocks(self):
        _, _, prof = _hot_profile("""
        int out[64];
        int main(int n) {
            for (int i = 0; i < n; i++) {
                if (i < 0) { out[0] = 99; }  /* never taken */
                out[i] = i;
                for (int j = 0; j < 20; j++) { out[i] += j; }
            }
            return 0;
        }
        """, args=(30,))
        assert prof.unexecuted_blocks

    def test_pointer_objects_map(self):
        mod, _, prof = _hot_profile("""
        int g[32];
        int main(int n) {
            for (int i = 0; i < n; i++) {
                for (int j = 0; j < 32; j++) { g[j] += i; }
            }
            return 0;
        }
        """, args=(20,))
        assert any(
            objs == {"global:g"} for objs in prof.pointer_objects.values())
