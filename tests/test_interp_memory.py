"""Simulated memory: interval object map, heap tags, COW overlays."""

import pytest

from repro.classify.heaps import SHADOW_BIT, HeapKind, shadow_address, tag_matches
from repro.interp.errors import GuestFault
from repro.interp.memory import (
    GLOBAL_BASE,
    HEAP_BASE,
    PAGE_SIZE,
    STACK_BASE,
    TAG_SHIFT,
    AddressSpace,
    heap_base_for_tag,
    heap_tag_of,
)


class TestAllocation:
    def test_alignment(self):
        space = AddressSpace()
        a = space.allocate(10, "a", "heap")
        b = space.allocate(1, "b", "heap")
        assert a.base % 16 == 0 and b.base % 16 == 0
        assert b.base >= a.end

    def test_addresses_never_reused(self):
        space = AddressSpace()
        a = space.allocate(64, "a", "heap")
        space.free(a.base)
        b = space.allocate(64, "b", "heap")
        assert b.base != a.base

    def test_zero_initialized(self):
        space = AddressSpace()
        obj = space.allocate(8, "z", "heap")
        assert space.read_int(obj.base, 8, signed=False) == 0

    def test_regions_are_disjoint(self):
        space = AddressSpace()
        g = space.allocate(8, "g", "global", GLOBAL_BASE)
        s = space.allocate(8, "s", "stack", STACK_BASE)
        h = space.allocate(8, "h", "heap", HEAP_BASE)
        assert g.base < STACK_BASE <= s.base < HEAP_BASE <= h.base


class TestLookup:
    def test_interior_pointer_resolves(self):
        space = AddressSpace()
        obj = space.allocate(100, "o", "heap")
        found, off = space.find(obj.base + 37)
        assert found is obj and off == 37

    def test_null_faults(self):
        with pytest.raises(GuestFault, match="null"):
            AddressSpace().find(0)

    def test_wild_pointer_faults(self):
        with pytest.raises(GuestFault, match="wild"):
            AddressSpace().find(0xDEAD0000)

    def test_out_of_bounds_access_faults(self):
        space = AddressSpace()
        obj = space.allocate(8, "o", "heap")
        with pytest.raises(GuestFault):
            space.read_bytes(obj.base + 4, 8)  # crosses the end

    def test_use_after_free_faults(self):
        space = AddressSpace()
        obj = space.allocate(8, "o", "heap")
        space.free(obj.base)
        with pytest.raises(GuestFault):
            space.read_bytes(obj.base, 1)

    def test_double_free_faults(self):
        space = AddressSpace()
        obj = space.allocate(8, "o", "heap")
        space.free(obj.base)
        # The slot is unregistered, so the second free faults as a wild
        # pointer (addresses are never reused).
        with pytest.raises(GuestFault):
            space.free(obj.base)

    def test_interior_free_faults(self):
        space = AddressSpace()
        obj = space.allocate(32, "o", "heap")
        with pytest.raises(GuestFault, match="interior"):
            space.free(obj.base + 8)


class TestTypedAccess:
    def test_little_endian(self):
        space = AddressSpace()
        obj = space.allocate(8, "o", "heap")
        space.write_int(obj.base, 0x0102030405060708, 8)
        assert space.read_bytes(obj.base, 2) == b"\x08\x07"

    def test_signed_roundtrip(self):
        space = AddressSpace()
        obj = space.allocate(4, "o", "heap")
        space.write_int(obj.base, -5, 4)
        assert space.read_int(obj.base, 4, signed=True) == -5
        assert space.read_int(obj.base, 4, signed=False) == 2**32 - 5

    def test_float_roundtrip(self):
        space = AddressSpace()
        obj = space.allocate(8, "o", "heap")
        space.write_float(obj.base, 3.14159)
        assert space.read_float(obj.base) == pytest.approx(3.14159)

    def test_cstring(self):
        space = AddressSpace()
        obj = space.allocate(8, "o", "heap")
        obj.data[:4] = b"hi\x00x"
        assert space.read_cstring(obj.base) == "hi"

    def test_fill_and_copy(self):
        space = AddressSpace()
        a = space.allocate(16, "a", "heap")
        b = space.allocate(16, "b", "heap")
        space.fill(a.base, 0xAB, 16)
        space.copy(b.base, a.base, 16)
        assert space.read_bytes(b.base, 16) == b"\xab" * 16

    def test_readonly_object_rejects_writes(self):
        space = AddressSpace()
        obj = space.allocate(8, "ro", "heap", writable=False)
        with pytest.raises(GuestFault, match="read-only"):
            space.write_int(obj.base, 1, 4)


class TestHeapTags:
    def test_tag_encoding(self):
        for tag in range(1, 8):
            base = heap_base_for_tag(tag)
            assert heap_tag_of(base) == tag
            assert heap_tag_of(base + 12345) == tag

    def test_normal_memory_has_tag_zero(self):
        assert heap_tag_of(GLOBAL_BASE) == 0
        assert heap_tag_of(HEAP_BASE + 100) == 0

    def test_private_shadow_differ_by_one_bit(self):
        diff = HeapKind.PRIVATE.base ^ HeapKind.SHADOW.base
        assert diff == SHADOW_BIT
        assert bin(diff).count("1") == 1

    def test_shadow_address_is_single_or(self):
        addr = HeapKind.PRIVATE.base + 0x1234
        assert shadow_address(addr) == addr | SHADOW_BIT
        assert heap_tag_of(shadow_address(addr)) == int(HeapKind.SHADOW)

    def test_tag_matches(self):
        addr = HeapKind.REDUX.base + 8
        assert tag_matches(addr, HeapKind.REDUX)
        assert not tag_matches(addr, HeapKind.PRIVATE)

    def test_allocation_in_tagged_region(self):
        space = AddressSpace()
        obj = space.allocate(64, "p", "logical", HeapKind.PRIVATE.base)
        assert obj.tag == int(HeapKind.PRIVATE)

    def test_sixteen_terabytes_per_heap(self):
        # The paper: "allows 16 terabytes of allocation within any heap".
        assert heap_base_for_tag(2) - heap_base_for_tag(1) == 16 * 2**40


class TestCopyOnWrite:
    def test_child_reads_parent(self):
        parent = AddressSpace()
        obj = parent.allocate(8, "o", "heap")
        parent.write_int(obj.base, 77, 8)
        child = AddressSpace(parent=parent)
        assert child.read_int(obj.base, 8, signed=True) == 77

    def test_child_write_does_not_leak_to_parent(self):
        parent = AddressSpace()
        obj = parent.allocate(8, "o", "heap")
        parent.write_int(obj.base, 1, 8)
        child = AddressSpace(parent=parent)
        child.write_int(obj.base, 2, 8)
        assert parent.read_int(obj.base, 8, True) == 1
        assert child.read_int(obj.base, 8, True) == 2

    def test_cow_preserves_untouched_bytes(self):
        parent = AddressSpace()
        obj = parent.allocate(16, "o", "heap")
        parent.write_int(obj.base + 8, 42, 8)
        child = AddressSpace(parent=parent)
        child.write_int(obj.base, 1, 8)  # copy triggered here
        assert child.read_int(obj.base + 8, 8, True) == 42

    def test_two_children_isolated(self):
        parent = AddressSpace()
        obj = parent.allocate(8, "o", "heap")
        a = AddressSpace(parent=parent)
        b = AddressSpace(parent=parent)
        a.write_int(obj.base, 10, 8)
        b.write_int(obj.base, 20, 8)
        assert a.read_int(obj.base, 8, True) == 10
        assert b.read_int(obj.base, 8, True) == 20

    def test_child_sees_parent_updates_before_cow(self):
        parent = AddressSpace()
        obj = parent.allocate(8, "o", "heap")
        child = AddressSpace(parent=parent)
        parent.write_int(obj.base, 5, 8)
        assert child.read_int(obj.base, 8, True) == 5

    def test_dirty_pages_tracked_on_child_only(self):
        parent = AddressSpace()
        obj = parent.allocate(PAGE_SIZE * 2, "o", "heap")
        parent.write_int(obj.base, 1, 8)
        assert not parent.dirty_pages
        child = AddressSpace(parent=parent)
        child.write_int(obj.base, 1, 8)
        child.write_int(obj.base + PAGE_SIZE, 1, 8)
        assert len(child.dirty_pages) == 2

    def test_child_allocations_local(self):
        parent = AddressSpace()
        child = AddressSpace(parent=parent)
        obj = child.allocate(8, "c", "heap")
        assert child.try_find(obj.base) is not None
        assert parent.try_find(obj.base) is None
