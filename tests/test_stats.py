"""RuntimeStats reporting (Table 3) and the ExecutionResult overhead
breakdown (Figure 8)."""

import pytest

from repro.parallel.stats import BUCKETS, ExecutionResult, InvocationResult
from repro.runtime.stats import MisspecEvent, RuntimeStats


class TestRuntimeStats:
    def _stats(self):
        s = RuntimeStats(invocations=3, checkpoints=7)
        s.private_read_bytes = 4096
        s.private_write_bytes = 1024
        s.misspeculations = [
            MisspecEvent("separation", 5),
            MisspecEvent("injected", 9, injected=True),
            MisspecEvent("privacy", 12),
            MisspecEvent("injected", 18, injected=True),
        ]
        return s

    def test_table3_row_keys_and_values(self):
        row = self._stats().table3_row()
        assert set(row) == {"invocations", "checkpoints",
                            "private_bytes_read", "private_bytes_written"}
        assert row["invocations"] == 3
        assert row["checkpoints"] == 7
        assert row["private_bytes_read"] == 4096
        assert row["private_bytes_written"] == 1024

    def test_misspec_count_filters_injected(self):
        s = self._stats()
        assert s.misspec_count() == 4
        assert s.misspec_count(include_injected=True) == 4
        assert s.misspec_count(include_injected=False) == 2

    def test_misspec_count_empty(self):
        s = RuntimeStats()
        assert s.misspec_count() == 0
        assert s.misspec_count(include_injected=False) == 0

    def test_validation_cycles_sums_all_buckets(self):
        s = RuntimeStats(private_read_cycles=10, private_write_cycles=20,
                         separation_cycles=30, redux_cycles=40,
                         misc_validation_cycles=50)
        assert s.validation_cycles() == 150
        # checkpoint cycles are deliberately not validation cycles
        s.checkpoint_cycles = 1000
        assert s.validation_cycles() == 150


class TestOverheadBreakdown:
    def _invocation(self):
        inv = InvocationResult(index=0, trips=100, workers=4)
        inv.wall_cycles = 1000
        inv.spawn_cycles = 50
        inv.useful_cycles = 2800
        inv.validation_cycles = {
            "private_read": 300, "private_write": 200,
            "separation": 100, "redux": 50, "misc": 50,
        }
        inv.checkpoint_cycles = 300
        return inv

    def test_keys_match_figure8_buckets(self):
        result = ExecutionResult(return_value=0, output=[], workers=4,
                                 invocations=[self._invocation()])
        assert tuple(result.overhead_breakdown()) == BUCKETS

    def test_fractions_sum_to_one(self):
        result = ExecutionResult(return_value=0, output=[], workers=4,
                                 invocations=[self._invocation()])
        breakdown = result.overhead_breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert all(0.0 <= v <= 1.0 for v in breakdown.values())
        # capacity = 4 workers x 1000 cycles
        assert breakdown["useful"] == pytest.approx(2800 / 4000)
        assert breakdown["private_read"] == pytest.approx(300 / 4000)
        assert breakdown["other_validation"] == pytest.approx(200 / 4000)

    def test_empty_result_is_all_zero(self):
        result = ExecutionResult(return_value=0, output=[], workers=4)
        breakdown = result.overhead_breakdown()
        assert set(breakdown) == set(BUCKETS)
        assert all(v == 0.0 for v in breakdown.values())

    def test_end_to_end_breakdown_sums_to_one(self):
        from tests.helpers import prepared_counter_program

        prog = prepared_counter_program(16)
        result = prog.execute(workers=4)
        breakdown = result.overhead_breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0, abs=1e-9)
        assert breakdown["useful"] > 0

    def test_speedup_over(self):
        inv = self._invocation()
        result = ExecutionResult(return_value=0, output=[], workers=4,
                                 sequential_cycles_outside=500,
                                 invocations=[inv])
        assert result.total_wall_cycles == 1500
        assert result.speedup_over(3000) == pytest.approx(2.0)
        empty = ExecutionResult(return_value=0, output=[], workers=4)
        assert empty.speedup_over(3000) == 0.0
