"""Loop-invariant code motion."""

import pytest

from repro.analysis import LoopInfo
from repro.analysis.licm import hoist_module
from repro.frontend import compile_minic
from repro.interp import Interpreter
from repro.ir import verify_module
from repro.ir.instructions import BinOp, Load


def _compile(src):
    return compile_minic(src, licm=False)


def _in_loop(fn, header, kind):
    li = LoopInfo(fn)
    loop = li.loop_with_header(header)
    return [i for bb in loop.blocks for i in bb.instructions
            if isinstance(i, kind)]


class TestPureHoisting:
    SRC = """
    int out[64];
    int main(int n, int a, int b) {
        for (int i = 0; i < n; i++) {
            int k = a * b + 3;      /* invariant */
            out[i] = k + i;
        }
        return out[0];
    }
    """

    def test_invariant_mul_leaves_loop(self):
        mod = _compile(self.SRC)
        fn = mod.function_named("main")
        before = len(_in_loop(fn, "for.cond", BinOp))
        moved = hoist_module(mod)
        after = len(_in_loop(fn, "for.cond", BinOp))
        assert moved >= 2  # the mul and the add
        assert after < before
        verify_module(mod)

    def test_semantics_preserved(self):
        plain = _compile(self.SRC)
        hoisted = _compile(self.SRC)
        hoist_module(hoisted)
        args = (10, 6, 7)
        assert Interpreter(plain).run(args=args) == \
            Interpreter(hoisted).run(args=args)

    def test_division_never_speculated(self):
        src = """
        int main(int n, int d) {
            int acc = 0;
            for (int i = 0; i < n; i++) {
                if (d != 0) { acc += 100 / d; }
                acc += i;
            }
            return acc;
        }
        """
        mod = _compile(src)
        hoist_module(mod)
        # must still run fine with d == 0 and a non-zero trip count
        assert Interpreter(mod).run(args=(5, 0)) == 0 + 1 + 2 + 3 + 4


class TestGlobalLoadHoisting:
    SRC = """
    int bound;
    int out[64];
    void setup(int n) { bound = n; }
    int main(int n) {
        setup(n);
        int acc = 0;
        for (int i = 0; i < bound; i++) {
            out[i] = i;
            acc += out[i];
        }
        return acc;
    }
    """

    def test_unmodified_global_load_hoisted(self):
        mod = _compile(self.SRC)
        fn = mod.function_named("main")
        moved = hoist_module(mod)
        assert moved >= 1
        loads = _in_loop(fn, "for.cond", Load)
        assert all(not isinstance(l.pointer, type(mod.global_named("bound")))
                   or l.pointer is not mod.global_named("bound")
                   for l in loads)
        assert Interpreter(mod).run(args=(10,)) == 45

    def test_makes_bound_a_canonical_iv(self):
        mod = _compile(self.SRC)
        hoist_module(mod)
        fn = mod.function_named("main")
        li = LoopInfo(fn)
        loop = li.loop_with_header("for.cond")
        assert li.find_induction_variable(loop) is not None

    def test_global_written_in_loop_not_hoisted(self):
        src = """
        int bound;
        int out[64];
        int main(int n) {
            bound = n;
            int acc = 0;
            for (int i = 0; i < bound; i++) {
                out[i] = i;
                if (i == 2) { bound = bound - 1; }
                acc += 1;
            }
            return acc;
        }
        """
        mod = _compile(src)
        hoist_module(mod)
        fn = mod.function_named("main")
        loads = _in_loop(fn, "for.cond", Load)
        gv = mod.global_named("bound")
        assert any(l.pointer is gv for l in loads)  # load stays put
        # semantics: shrinking the bound mid-loop must still terminate
        assert Interpreter(mod).run(args=(6,)) == 5

    def test_global_written_by_callee_not_hoisted(self):
        src = """
        int bound;
        void shrink() { bound = bound - 1; }
        int main(int n) {
            bound = n;
            int acc = 0;
            for (int i = 0; i < bound; i++) { shrink(); acc += 1; }
            return acc;
        }
        """
        mod = _compile(src)
        hoist_module(mod)
        fn = mod.function_named("main")
        gv = mod.global_named("bound")
        assert any(l.pointer is gv
                   for l in _in_loop(fn, "for.cond", Load))

    def test_zero_trip_loop_safe(self):
        mod = _compile(self.SRC)
        hoist_module(mod)
        assert Interpreter(mod).run(args=(0,)) == 0


class TestPipelineIntegration:
    def test_compile_minic_applies_licm_by_default(self):
        src = TestGlobalLoadHoisting.SRC
        mod = compile_minic(src)
        fn = mod.function_named("main")
        li = LoopInfo(fn)
        assert li.find_induction_variable(
            li.loop_with_header("for.cond")) is not None

    def test_global_bound_loop_now_parallelizable(self):
        """With LICM, a loop bounded by an unmodified global can be
        selected — previously the bound load hid the induction variable."""
        from repro.bench.pipeline import prepare

        src = """
        int bound;
        int scratch[8];
        int out[64];
        void setup(int n) { bound = n; }
        int main(int n) {
            setup(n);
            for (int i = 0; i < bound; i++) {
                for (int j = 0; j < 8; j++) { scratch[j] = i + j; }
                int acc = 0;
                for (int r = 0; r < 5; r++) {
                    for (int j = 0; j < 8; j++) { acc += scratch[j]; }
                }
                out[i] = acc;
            }
            printf("%d\\n", out[0]);
            return 0;
        }
        """
        prog = prepare(src, "licm_bound", args=(32,))
        assert prog.plan.ref.function == "main"
        result = prog.execute(workers=4)
        assert result.output == prog.sequential.output
