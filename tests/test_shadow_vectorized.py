"""Differential tests: the vectorized shadow/checkpoint layers vs the
per-byte reference oracle (``REPRO_SHADOW=ref``).

Four layers of comparison, each driven by hypothesis where state space
matters:

* random read/write/checkpoint/mark sequences through
  :class:`ShadowHeap` and :class:`ReferenceShadowHeap`, asserting
  identical metadata bytes, identical misspeculation
  kind/detail/iteration, and identical written/read-live-in offsets
  after every operation;
* the run accessors (``write_ts_runs``/``read_live_in_runs``) against
  the oracle's per-byte views;
* phase-two validation and latest-iteration-wins merge over random
  packed fragments (:mod:`repro.runtime.merge`, vectorized vs ``_ref``);
* whole pipeline runs with ``REPRO_SHADOW=ref`` vs the default,
  asserting identical output, stats, checkpoint records, and
  misspeculation events on clean, injected, and genuine-violation
  programs.
"""

from hypothesis import given, settings, strategies as st

from repro.bench.pipeline import prepare
from repro.interp.errors import Misspeculation
from repro.runtime.fragments import (
    EpochFragment, WRITE_FREED, WRITE_LOCAL, WRITE_VALUE)
from repro.runtime.intervals import (
    IntervalSet, coalesce, constant_runs, first_overlap, runs_from_offsets,
    value_runs)
from repro.runtime.merge import (
    find_phase2_violation, find_phase2_violation_ref,
    merge_fragments, merge_fragments_ref)
from repro.runtime.shadow import (
    ReferenceShadowHeap, SHADOW_ENV, ShadowHeap, TS_BASE, make_shadow,
    timestamp_for)

from helpers import prepared_counter_program

# -- operation-sequence differential ------------------------------------

ops = st.lists(
    st.tuples(st.sampled_from(["read", "write", "checkpoint", "mark"]),
              st.integers(min_value=0, max_value=180),   # offset
              st.integers(min_value=1, max_value=24),    # size
              st.integers(min_value=0, max_value=6)),    # relative iter
    min_size=1, max_size=40)


def _apply(shadow, op):
    kind, offset, size, rel = op
    if kind == "checkpoint":
        shadow.reset_after_checkpoint()
    elif kind == "mark":
        shadow.mark_old_writes(set(range(offset, offset + size)))
    else:
        ts = timestamp_for(rel, 0)
        if kind == "read":
            shadow.on_read(offset, size, ts, rel)
        else:
            shadow.on_write(offset, size, ts, rel)


def _assert_same_state(ref, vec):
    assert ref.size == vec.size
    assert bytes(ref.meta) == bytes(vec.meta)
    assert ref.written_offsets() == vec.written_offsets()
    assert ref.read_live_in_offsets() == vec.read_live_in_offsets()


class TestOperationDifferential:
    @given(sequence=ops)
    @settings(max_examples=400, deadline=None)
    def test_metadata_and_misspecs_identical(self, sequence):
        ref = ReferenceShadowHeap(32)
        vec = ShadowHeap(32)
        for op in sequence:
            ref_exc = vec_exc = None
            try:
                _apply(ref, op)
            except Misspeculation as exc:
                ref_exc = exc
            try:
                _apply(vec, op)
            except Misspeculation as exc:
                vec_exc = exc
            assert (ref_exc is None) == (vec_exc is None), op
            if ref_exc is not None:
                assert (ref_exc.kind, ref_exc.detail, ref_exc.iteration) == \
                    (vec_exc.kind, vec_exc.detail, vec_exc.iteration)
            _assert_same_state(ref, vec)

    @given(sequence=ops)
    @settings(max_examples=200, deadline=None)
    def test_run_accessors_match_per_byte_views(self, sequence):
        ref = ReferenceShadowHeap(32)
        vec = ShadowHeap(32)
        for op in sequence:
            try:
                _apply(ref, op)
            except Misspeculation:
                pass
            try:
                _apply(vec, op)
            except Misspeculation:
                pass
        assert sorted(ref.write_iterations(0)) == \
            sorted(vec.write_iterations(0))
        read_runs = vec.read_live_in_runs()
        covered = set()
        for start, end in read_runs:
            covered.update(range(start, end))
        assert covered == ref.read_live_in_offsets()
        assert read_runs == coalesce(read_runs)  # canonical form
        for start, end, ts in vec.write_ts_runs():
            assert start < end and ts >= TS_BASE


class TestMakeShadow:
    def test_env_selects_implementation(self, monkeypatch):
        monkeypatch.delenv(SHADOW_ENV, raising=False)
        assert isinstance(make_shadow(8), ShadowHeap)
        monkeypatch.setenv(SHADOW_ENV, "ref")
        assert isinstance(make_shadow(8), ReferenceShadowHeap)


# -- interval primitives -------------------------------------------------

run_lists = st.lists(
    st.tuples(st.integers(min_value=0, max_value=300),
              st.integers(min_value=1, max_value=20)).map(
                  lambda p: (p[0], p[0] + p[1])),
    max_size=20)


class TestIntervalPrimitives:
    @given(runs=run_lists)
    @settings(max_examples=200, deadline=None)
    def test_interval_set_matches_plain_set(self, runs):
        iset = IntervalSet()
        plain = set()
        for start, end in runs:
            iset.add_range(start, end)
            plain.update(range(start, end))
        assert iset.offsets() == plain
        assert bool(iset) == bool(plain)
        assert iset.min_offset() == (min(plain) if plain else None)
        for probe in (0, 5, 150, 321):
            assert (probe in iset) == (probe in plain)

    @given(a=run_lists, b=run_lists)
    @settings(max_examples=200, deadline=None)
    def test_first_overlap_matches_set_intersection(self, a, b):
        ca, cb = coalesce(a), coalesce(b)
        sa = {x for s, e in ca for x in range(s, e)}
        sb = {x for s, e in cb for x in range(s, e)}
        expected = min(sa & sb) if sa & sb else None
        assert first_overlap(ca, cb) == expected

    @given(data=st.binary(max_size=200),
           value=st.integers(min_value=0, max_value=255))
    @settings(max_examples=200, deadline=None)
    def test_value_runs_and_constant_runs(self, data, value):
        expected = {i for i, byte in enumerate(data) if byte == value}
        got = {x for s, e in value_runs(data, value) for x in range(s, e)}
        assert got == expected
        reconstructed = bytearray(len(data))
        for start, end, code in constant_runs(data):
            reconstructed[start:end] = bytes((code,)) * (end - start)
        assert bytes(reconstructed) == data

    @given(offs=st.sets(st.integers(min_value=0, max_value=100),
                        max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_runs_from_offsets_round_trip(self, offs):
        runs = runs_from_offsets(offs)
        assert {x for s, e in runs for x in range(s, e)} == offs
        assert runs == coalesce(runs)


# -- phase-2 validation and merge differential ---------------------------

write_entries = st.dictionaries(
    st.integers(min_value=0, max_value=160),
    st.tuples(st.integers(min_value=0, max_value=6),
              st.sampled_from([WRITE_VALUE, WRITE_FREED, WRITE_LOCAL]),
              st.integers(min_value=0, max_value=255)),
    max_size=48)


@st.composite
def fragment_lists(draw):
    count = draw(st.integers(min_value=1, max_value=4))
    frags = []
    for wid in range(count):
        entries = draw(write_entries)
        reads = draw(st.sets(st.integers(min_value=0, max_value=160),
                             max_size=32))
        extra_written = draw(st.sets(
            st.integers(min_value=0, max_value=160), max_size=32))
        frags.append(EpochFragment.pack(
            wid=wid, epoch_start=0,
            read_live_in=reads,
            writes=[(b, rel, kind, value)
                    for b, (rel, kind, value) in entries.items()],
            epoch_written=set(entries) | extra_written))
    return frags


committed_sets = st.sets(st.integers(min_value=0, max_value=160),
                         max_size=24)


def _committed_meta(offsets):
    meta = bytearray(192)
    for b in offsets:
        meta[b] = 1
    return meta


class TestPhase2Differential:
    @given(frags=fragment_lists(), committed=committed_sets)
    @settings(max_examples=400, deadline=None)
    def test_same_violation(self, frags, committed):
        meta = _committed_meta(committed)
        assert find_phase2_violation(frags, meta) == \
            find_phase2_violation_ref(frags, meta)

    def test_committed_check_outranks_cross_worker_at_same_offset(self):
        frags = [
            EpochFragment.pack(wid=0, epoch_start=0, read_live_in={5}),
            EpochFragment.pack(wid=1, epoch_start=0,
                               writes=[(5, 0, WRITE_VALUE, 7)],
                               epoch_written={5}),
        ]
        meta = _committed_meta({5})
        for finder in (find_phase2_violation, find_phase2_violation_ref):
            violation = finder(frags, meta)
            assert violation.kind == "committed"
            assert violation.offset == 5 and violation.reader_wid == 0


class TestMergeDifferential:
    @given(frags=fragment_lists())
    @settings(max_examples=400, deadline=None)
    def test_same_outcome(self, frags):
        assert merge_fragments(frags) == merge_fragments_ref(frags)

    def test_first_fragment_keeps_iteration_ties(self):
        frags = [
            EpochFragment.pack(wid=0, epoch_start=0,
                               writes=[(3, 2, WRITE_VALUE, 11)],
                               epoch_written={3}),
            EpochFragment.pack(wid=1, epoch_start=0,
                               writes=[(3, 2, WRITE_VALUE, 99)],
                               epoch_written={3}),
        ]
        for merger in (merge_fragments, merge_fragments_ref):
            outcome = merger(frags)
            assert outcome.values[3 - outcome.base] == 11

    def test_strictly_later_iteration_wins(self):
        frags = [
            EpochFragment.pack(wid=0, epoch_start=0,
                               writes=[(3, 2, WRITE_VALUE, 11)],
                               epoch_written={3}),
            EpochFragment.pack(wid=1, epoch_start=0,
                               writes=[(3, 4, WRITE_VALUE, 99)],
                               epoch_written={3}),
        ]
        for merger in (merge_fragments, merge_fragments_ref):
            outcome = merger(frags)
            assert outcome.values[3 - outcome.base] == 99
            assert outcome.merged_bytes == 1


# -- end-to-end pipeline differential ------------------------------------

def _run_counter(monkeypatch, mode, **kwargs):
    if mode == "ref":
        monkeypatch.setenv(SHADOW_ENV, "ref")
    else:
        monkeypatch.delenv(SHADOW_ENV, raising=False)
    prog = prepared_counter_program(24)
    return prog.execute(workers=3, **kwargs)


def _assert_results_match(a, b):
    assert a.output == b.output
    assert a.return_value == b.return_value
    assert a.total_wall_cycles == b.total_wall_cycles
    sa, sb = a.runtime_stats, b.runtime_stats
    assert sa.counter_snapshot() == sb.counter_snapshot()
    assert [(m.kind, m.iteration, m.detail, m.injected)
            for m in sa.misspeculations] == \
        [(m.kind, m.iteration, m.detail, m.injected)
         for m in sb.misspeculations]
    assert [(r.start_iteration, r.end_iteration, r.private_bytes_copied,
             r.redux_bytes_merged, r.dirty_pages)
            for r in sa.checkpoint_records] == \
        [(r.start_iteration, r.end_iteration, r.private_bytes_copied,
          r.redux_bytes_merged, r.dirty_pages)
         for r in sb.checkpoint_records]


class TestEndToEndOracleParity:
    def test_clean_run(self, monkeypatch):
        ref = _run_counter(monkeypatch, "ref", checkpoint_period=5)
        vec = _run_counter(monkeypatch, "vec", checkpoint_period=5)
        _assert_results_match(ref, vec)
        assert vec.runtime_stats.misspec_count() == 0

    def test_injected_misspeculation(self, monkeypatch):
        ref = _run_counter(monkeypatch, "ref", misspec_period=7,
                           checkpoint_period=4)
        vec = _run_counter(monkeypatch, "vec", misspec_period=7,
                           checkpoint_period=4)
        _assert_results_match(ref, vec)
        assert vec.runtime_stats.misspec_count() > 0

    GENUINE_SRC = """
    int state[8];
    int out[128];
    int main(int n, int carry) {
        for (int i = 0; i < n; i++) {
            if (carry && i > 0) {
                out[i] = state[0];
            } else {
                out[i] = i;
            }
            state[0] = i * 7;
            for (int j = 0; j < 25; j++) { out[i] += j; }
        }
        printf("%d %d %d\\n", out[1], out[5], out[n-1]);
        return 0;
    }
    """

    def test_genuine_privacy_violation(self, monkeypatch):
        results = {}
        for mode in ("ref", "vec"):
            if mode == "ref":
                monkeypatch.setenv(SHADOW_ENV, "ref")
            else:
                monkeypatch.delenv(SHADOW_ENV, raising=False)
            prog = prepare(self.GENUINE_SRC, "oracle_privacy",
                           args=(24, 0), ref_args=(24, 1))
            results[mode] = prog.execute(workers=4)
        _assert_results_match(results["ref"], results["vec"])
        assert results["vec"].runtime_stats.misspec_count() > 0
        assert results["vec"].runtime_stats.recoveries > 0
