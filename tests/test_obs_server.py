"""The live telemetry plane: status endpoint, schema validation for its
payloads, and the `repro top` dashboard rendering."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import schema
from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.server import (
    STATUS_PORT_ENV,
    StatusServer,
    resolve_status_port,
)
from repro.obs.top import (
    payload_from_registry,
    render_dashboard,
    worker_rows,
)
from repro.obs.trace import TRACER


@pytest.fixture(autouse=True)
def _clean_obs():
    TRACER.disable()
    TRACER.reset()
    METRICS.reset()
    yield
    TRACER.disable()
    TRACER.reset()
    METRICS.reset()


def _populated_registry() -> MetricsRegistry:
    r = MetricsRegistry()
    r.counter("executor.epochs").inc(4)
    r.counter("executor.iterations.committed").inc(64)
    r.gauge("executor.progress.trips").set(64)
    r.gauge("executor.progress.iteration").set(64)
    r.counter("runtime.checkpoints").inc(4)
    r.counter("worker.0.epoch.slices").inc(2)
    r.counter("worker.0.epoch.iterations").inc(32)
    r.counter("worker.0.epoch.busy_us").inc(500_000)
    r.counter("worker.1.epoch.slices").inc(2)
    r.counter("worker.1.epoch.iterations").inc(32)
    r.counter("worker.1.epoch.busy_us").inc(400_000)
    h = r.histogram("worker.1.span_us")
    h.observe(10.0)
    h.observe(20.0)
    return r


def _get(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.read()


class TestResolveStatusPort:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(STATUS_PORT_ENV, raising=False)
        assert resolve_status_port(None) is None

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(STATUS_PORT_ENV, "9999")
        assert resolve_status_port(4242) == 4242

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(STATUS_PORT_ENV, "4321")
        assert resolve_status_port(None) == 4321

    def test_env_not_integer(self, monkeypatch):
        monkeypatch.setenv(STATUS_PORT_ENV, "eighty")
        with pytest.raises(ValueError, match="not an integer"):
            resolve_status_port(None)

    def test_env_out_of_range(self, monkeypatch):
        monkeypatch.setenv(STATUS_PORT_ENV, "70000")
        with pytest.raises(ValueError, match="outside"):
            resolve_status_port(None)


class TestStatusServer:
    def test_health_metrics_and_prom_roundtrip(self):
        registry = _populated_registry()
        with StatusServer(port=0, registry=registry) as srv:
            assert srv.port and srv.port != 0
            health = json.loads(_get(srv.url + "/health"))
            assert health["status"] == "ok"
            assert health["metrics"] == len(registry)

            payload = json.loads(_get(srv.url + "/metrics"))
            assert payload["status_format"] == 1
            assert payload["generated_unix"] > 0
            assert payload["metrics"]["executor.epochs"]["value"] == 4
            assert payload["metrics"]["worker.1.span_us"]["count"] == 2

            prom = _get(srv.url + "/metrics.prom").decode()
            assert "# TYPE repro_executor_epochs counter" in prom
            assert 'repro_epoch_slices{worker="0"} 2' in prom
        assert srv.port is None  # stopped by the context manager

    def test_unknown_path_is_404(self):
        with StatusServer(port=0, registry=MetricsRegistry()) as srv:
            with pytest.raises(urllib.error.HTTPError) as exc:
                _get(srv.url + "/nope")
            assert exc.value.code == 404
            body = json.loads(exc.value.read())
            assert "/metrics" in body["endpoints"]

    def test_serves_live_updates(self):
        registry = MetricsRegistry()
        with StatusServer(port=0, registry=registry) as srv:
            before = json.loads(_get(srv.url + "/metrics"))["metrics"]
            assert before == {}
            registry.counter("executor.epochs").inc()
            after = json.loads(_get(srv.url + "/metrics"))["metrics"]
            assert after["executor.epochs"]["value"] == 1

    def test_defaults_to_process_singletons(self):
        METRICS.counter("executor.epochs").inc(7)
        with StatusServer(port=0) as srv:
            payload = json.loads(_get(srv.url + "/metrics"))
        assert payload["metrics"]["executor.epochs"]["value"] == 7

    def test_epoch_unix_anchor_present(self):
        with StatusServer(port=0, registry=MetricsRegistry()) as srv:
            payload = json.loads(_get(srv.url + "/metrics"))
        assert payload["epoch_unix"] == pytest.approx(
            TRACER.epoch_unix, abs=1e-6)


class TestMetricsSchema:
    def _payload_file(self, tmp_path, payload):
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_live_payload_validates(self, tmp_path):
        with StatusServer(port=0, registry=_populated_registry()) as srv:
            raw = _get(srv.url + "/metrics")
        path = tmp_path / "metrics.json"
        path.write_bytes(raw)
        report = schema.validate_metrics(str(path))
        assert report["errors"] == []
        assert report["metrics"] > 0

    def test_missing_envelope_fields(self, tmp_path):
        path = self._payload_file(tmp_path, {"metrics": {}})
        errors = schema.validate_metrics(path)["errors"]
        assert any("status_format" in e for e in errors)
        assert any("generated_unix" in e for e in errors)

    def test_bad_worker_label(self, tmp_path):
        path = self._payload_file(tmp_path, {
            "status_format": 1, "generated_unix": 1.0, "run": {},
            "metrics": {
                "worker.two.epoch.slices": {"type": "counter", "value": 1},
            },
        })
        errors = schema.validate_metrics(path)["errors"]
        assert any("not an integer" in e for e in errors)

    def test_missing_type_fields(self, tmp_path):
        path = self._payload_file(tmp_path, {
            "status_format": 1, "generated_unix": 1.0, "run": {},
            "metrics": {
                "a": {"type": "counter"},
                "b": {"type": "widget", "value": 1},
                "c": {"type": "histogram", "count": 2},
            },
        })
        errors = schema.validate_metrics(path)["errors"]
        assert any("'value'" in e for e in errors)
        assert any("unknown type" in e for e in errors)
        assert any("'sum'" in e for e in errors)

    def test_null_gauge_is_valid(self, tmp_path):
        path = self._payload_file(tmp_path, {
            "status_format": 1, "generated_unix": 1.0, "run": {},
            "metrics": {"g": {"type": "gauge", "value": None}},
        })
        assert schema.validate_metrics(path)["errors"] == []


class TestPromSchema:
    def _prom_file(self, tmp_path, text):
        path = tmp_path / "metrics.prom"
        path.write_text(text)
        return str(path)

    def test_live_exposition_validates(self, tmp_path):
        with StatusServer(port=0, registry=_populated_registry()) as srv:
            raw = _get(srv.url + "/metrics.prom")
        path = tmp_path / "metrics.prom"
        path.write_bytes(raw)
        report = schema.validate_prom(str(path))
        assert report["errors"] == []
        assert report["samples"] > 0
        assert report["families"]["repro_executor_epochs"] == "counter"

    def test_sample_without_type_declaration(self, tmp_path):
        path = self._prom_file(tmp_path, "repro_orphan 1\n")
        errors = schema.validate_prom(path)["errors"]
        assert any("no preceding TYPE" in e for e in errors)

    def test_summary_suffixes_belong_to_family(self, tmp_path):
        path = self._prom_file(
            tmp_path,
            "# TYPE repro_lat summary\n"
            'repro_lat{quantile="0.5"} 1.0\n'
            "repro_lat_count 2\n"
            "repro_lat_sum 3.0\n")
        assert schema.validate_prom(path)["errors"] == []

    def test_bad_lines_flagged(self, tmp_path):
        path = self._prom_file(
            tmp_path,
            "# TYPE repro_x gauge\n"
            "repro_x notanumber\n"
            "repro_x{unquoted=1} 2\n"
            "!! garbage\n")
        errors = schema.validate_prom(path)["errors"]
        assert any("non-numeric" in e for e in errors)
        assert any("bad label pair" in e for e in errors)
        assert any("unparseable" in e for e in errors)

    def test_empty_exposition_fails(self, tmp_path):
        path = self._prom_file(tmp_path, "\n")
        errors = schema.validate_prom(path)["errors"]
        assert any("no samples" in e for e in errors)

    def test_cli_modes(self, tmp_path, capsys):
        with StatusServer(port=0, registry=_populated_registry()) as srv:
            mjson = _get(srv.url + "/metrics")
            mprom = _get(srv.url + "/metrics.prom")
        jpath = tmp_path / "m.json"
        jpath.write_bytes(mjson)
        ppath = tmp_path / "m.prom"
        ppath.write_bytes(mprom)
        assert schema.main(["--metrics", str(jpath)]) == 0
        assert schema.main(["--prom", str(ppath)]) == 0
        bad = tmp_path / "bad.prom"
        bad.write_text("garbage !\n")
        assert schema.main(["--prom", str(bad)]) == 1


class TestTopDashboard:
    def test_worker_rows_numeric_order(self):
        metrics = {
            "worker.10.epoch.slices": {"type": "counter", "value": 1},
            "worker.2.epoch.slices": {"type": "counter", "value": 1},
            "worker.0.span_us": {"type": "histogram", "count": 3,
                                 "sum": 1.0},
            "other.metric": {"type": "counter", "value": 9},
        }
        rows = worker_rows(metrics)
        assert [wid for wid, _ in rows] == ["0", "2", "10"]
        assert rows[0][1]["span_us"] == 3  # histogram falls back to count

    def test_render_dashboard_snapshot(self):
        payload = payload_from_registry(
            _populated_registry(),
            run={"workload": "dijkstra", "backend": "process"})
        frame = render_dashboard(payload)
        assert "dijkstra" in frame
        assert "backend=process" in frame
        assert "epochs committed" in frame
        # Both workers, numerically ordered, with busy seconds.
        w0 = frame.index("     0  ")
        w1 = frame.index("     1  ")
        assert w0 < w1
        assert "0.50s" in frame and "0.40s" in frame

    def test_render_dashboard_rates_from_prev(self):
        prev_reg = MetricsRegistry()
        prev_reg.counter("executor.epochs").inc(2)
        prev_reg.counter("worker.0.epoch.busy_us").inc(100_000)
        prev = payload_from_registry(prev_reg)
        cur_reg = MetricsRegistry()
        cur_reg.counter("executor.epochs").inc(4)
        cur_reg.counter("worker.0.epoch.busy_us").inc(600_000)
        cur = payload_from_registry(cur_reg)
        cur["generated_unix"] = prev["generated_unix"] + 1.0
        frame = render_dashboard(cur, prev=prev)
        assert "2.0 epoch/s" in frame
        assert "50%" in frame  # 0.5s busy over a 1s poll gap

    def test_render_without_workers_notes_process_backend(self):
        reg = MetricsRegistry()
        reg.counter("executor.epochs").inc()
        payload = payload_from_registry(reg, run={"backend": "process"})
        assert "no worker.N.* metrics yet" in render_dashboard(payload)

    def test_snapshot_cli(self, tmp_path, capsys):
        from repro.obs.top import main as top_main

        payload = payload_from_registry(_populated_registry())
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(payload))
        assert top_main(["--snapshot", str(path)]) == 0
        assert "epochs committed" in capsys.readouterr().out

    def test_no_endpoint_configured_errors(self, monkeypatch, capsys):
        from repro.obs.top import main as top_main

        monkeypatch.delenv(STATUS_PORT_ENV, raising=False)
        assert top_main([]) == 2
        assert "REPRO_STATUS_PORT" in capsys.readouterr().err

    def test_top_polls_live_server(self):
        from repro.obs.top import fetch_payload

        with StatusServer(port=0, registry=_populated_registry()) as srv:
            payload = fetch_payload(srv.url + "/metrics")
        assert payload["metrics"]["executor.epochs"]["value"] == 4
