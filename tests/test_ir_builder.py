"""IRBuilder: construction, coercion, constant folding, verification."""

import pytest

from repro.ir import (
    BinOpKind,
    CastKind,
    CmpPred,
    ConstFloat,
    ConstInt,
    Function,
    FunctionType,
    IRBuilder,
    IRTypeError,
    Module,
    VerificationError,
    format_function,
    verify_module,
)
from repro.ir.instructions import BinOp, Cast, Phi
from repro.ir.types import BOOL, F64, I32, I64, VOID, PointerType


@pytest.fixture
def env():
    mod = Module("t")
    fn = Function("f", FunctionType(I64, ()))
    mod.add_function(fn)
    bb = fn.add_block("entry")
    return mod, fn, IRBuilder(mod, bb)


class TestCoercion:
    def test_int_literal_becomes_const(self, env):
        _, _, b = env
        inst = b.add(1, 2)
        assert isinstance(inst, ConstInt)  # folded

    def test_mixed_value_and_literal(self, env):
        _, _, b = env
        a = b.alloca(I64)
        loaded = b.load(a, I64)
        inst = b.add(loaded, 5)
        assert isinstance(inst, BinOp)
        assert isinstance(inst.rhs, ConstInt)
        assert inst.rhs.type == I64  # matched to lhs type

    def test_float_literal(self, env):
        _, _, b = env
        a = b.alloca(F64)
        loaded = b.load(a, F64)
        inst = b.fadd(loaded, 1.5)
        assert isinstance(inst.rhs, ConstFloat)

    def test_bad_operand_rejected(self, env):
        _, _, b = env
        with pytest.raises(IRTypeError):
            b.add("nope", 1)


class TestConstantFolding:
    @pytest.mark.parametrize("kind,a,b_,expect", [
        (BinOpKind.ADD, 2, 3, 5),
        (BinOpKind.SUB, 2, 3, -1),
        (BinOpKind.MUL, 4, 8, 32),
        (BinOpKind.AND, 0b1100, 0b1010, 0b1000),
        (BinOpKind.OR, 0b1100, 0b1010, 0b1110),
        (BinOpKind.XOR, 0b1100, 0b1010, 0b0110),
        (BinOpKind.SHL, 1, 4, 16),
    ])
    def test_folds(self, env, kind, a, b_, expect):
        _, _, b = env
        result = b.binop(kind, a, b_)
        assert isinstance(result, ConstInt)
        assert result.value == expect

    def test_fold_wraps(self, env):
        _, _, b = env
        result = b.binop(BinOpKind.ADD, ConstInt(I32, 2**31 - 1), ConstInt(I32, 1))
        assert result.value == -(2**31)

    def test_div_not_folded(self, env):
        _, _, b = env
        result = b.div(6, 3)
        assert isinstance(result, BinOp)  # division kept (trap semantics)

    def test_cast_folds_sext(self, env):
        _, _, b = env
        out = b.cast(CastKind.SEXT, ConstInt(I32, -5), I64)
        assert isinstance(out, ConstInt)
        assert out.value == -5 and out.type == I64

    def test_cast_folds_zext_unsigned_view(self, env):
        _, _, b = env
        out = b.cast(CastKind.ZEXT, ConstInt(I32, -1), I64)
        assert out.value == 2**32 - 1

    def test_cast_folds_trunc(self, env):
        _, _, b = env
        out = b.cast(CastKind.TRUNC, ConstInt(I64, 0x1_0000_0005), I32)
        assert out.value == 5

    def test_folding_emits_nothing(self, env):
        _, fn, b = env
        before = len(fn.entry.instructions)
        b.add(1, 2)
        assert len(fn.entry.instructions) == before


class TestStructure:
    def test_terminated_block_rejects_append(self, env):
        _, fn, b = env
        b.ret(0)
        with pytest.raises(IRTypeError):
            b.ret(1)

    def test_block_names_unique(self, env):
        _, fn, _ = env
        a = fn.add_block("x")
        c = fn.add_block("x")
        assert a.name != c.name

    def test_successors(self, env):
        _, fn, b = env
        t = fn.add_block("t")
        f = fn.add_block("f")
        cond = b.icmp(CmpPred.LT, 1, 2)
        b.condbr(cond, t, f)
        assert fn.entry.successors() == [t, f]

    def test_call_intrinsic_declares(self, env):
        mod, _, b = env
        b.call_intrinsic("malloc", [16])
        assert "malloc" in mod.functions
        assert mod.functions["malloc"].is_intrinsic

    def test_unknown_intrinsic_rejected(self, env):
        _, _, b = env
        with pytest.raises(IRTypeError):
            b.call_intrinsic("not_a_thing", [])


class TestVerifier:
    def test_clean_module_passes(self, env):
        mod, _, b = env
        b.ret(0)
        verify_module(mod)

    def test_missing_terminator(self, env):
        mod, _, b = env
        b.load(b.alloca(I64), I64)  # no terminator
        with pytest.raises(VerificationError, match="terminator"):
            verify_module(mod)

    def test_ret_type_mismatch(self):
        mod = Module("t")
        fn = Function("v", FunctionType(VOID, ()))
        mod.add_function(fn)
        b = IRBuilder(mod, fn.add_block("entry"))
        b.ret(1)
        with pytest.raises(VerificationError, match="void"):
            verify_module(mod)

    def test_foreign_branch_target(self, env):
        mod, fn, b = env
        other = Function("g", FunctionType(I64, ()))
        mod.add_function(other)
        foreign = other.add_block("fb")
        b.br(foreign)
        with pytest.raises(VerificationError, match="foreign"):
            verify_module(mod)

    def test_use_of_undefined_value(self, env):
        mod, fn, b = env
        ghost_fn = Function("ghost", FunctionType(I64, ()))
        mod.add_function(ghost_fn)
        gbb = ghost_fn.add_block("e")
        gb = IRBuilder(mod, gbb)
        ghost = gb.alloca(I64)
        gbb.instructions.clear()  # value never actually defined
        b.load(ghost, I64)
        b.ret(0)
        with pytest.raises(VerificationError, match="undefined"):
            verify_module(mod)


class TestPhi:
    def test_incoming_bookkeeping(self, env):
        _, fn, b = env
        phi = Phi(I64, "p")
        e = fn.entry
        phi.add_incoming(e, ConstInt(I64, 1))
        assert phi.incoming_for(e).value == 1
        with pytest.raises(IRTypeError):
            phi.incoming_for(fn.add_block("x"))

    def test_replace_operand_updates_incoming(self, env):
        _, fn, _ = env
        phi = Phi(I64)
        old = ConstInt(I64, 1)
        new = ConstInt(I64, 2)
        phi.add_incoming(fn.entry, old)
        phi.replace_operand(old, new)
        assert phi.incoming_for(fn.entry) is new


class TestPrinter:
    def test_function_renders(self, env):
        mod, fn, b = env
        a = b.alloca(I64, name="slot")
        b.store(7, a)
        v = b.load(a, I64)
        b.ret(v)
        text = format_function(fn)
        assert "alloca" in text and "store" in text and "ret" in text
        assert "@f" in text
