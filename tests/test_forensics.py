"""Misspeculation forensics: flight recorder, root-cause explain engine,
and HTML run reports.

The flight recorder must be a pure observer (dumps only on
misspeculation or crash, nothing when clean), the explain engine must
attribute every misspeculation to its static site/object/heap
identically on both backends, and the artifacts must round-trip through
their on-disk JSONL/JSON formats and the schema validator.
"""

import json
import subprocess
import sys

import pytest

from repro.adapt import SpeculationController
from repro.bench.pipeline import prepare
from repro.classify.heaps import HeapKind
from repro.forensics import (
    FlightRecorder,
    explain_snapshot,
    load_dump,
    render_html,
    render_text,
    summarize_context,
    write_dump,
)
from repro.interp.errors import Misspeculation
from repro.obs import schema
from repro.parallel.backend import make_executor
from repro.parallel.executor import DOALLExecutor
from repro.runtime.shadow import timestamp_for
from repro.workloads import ALL_WORKLOADS

from helpers import prepared_counter_program

SRC = """
int scratch[8];
int out[64];
int main(int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < 8; j++) { scratch[j] = i + j; }
        int acc = 0;
        for (int j = 0; j < 8; j++) { acc = acc + scratch[j]; }
        out[i] = acc;
    }
    printf("%d\\n", out[0]);
    return 0;
}
"""


class TestFlightRecorder:
    def test_ring_drops_oldest_and_counts(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record("epoch", outcome="commit", index=i)
        assert len(rec.events) == 4
        assert rec.dropped == 6
        assert [e["index"] for e in rec.events] == [6, 7, 8, 9]
        # seq numbers keep counting across drops.
        assert [e["seq"] for e in rec.events] == [6, 7, 8, 9]

    def test_snapshot_shape(self):
        rec = FlightRecorder(capacity=8)
        rec.set_metadata(backend="simulated", workload="t")
        rec.record("misspec", kind="privacy", iteration=3, detail="d",
                   injected=False, context=None)
        rec.note_site_accesses({"global:a": 16}, {"global:a": 4})
        snap = rec.snapshot(heap_map=[], site_heaps={"global:a": HeapKind.PRIVATE},
                            crash=False)
        assert snap["meta"]["backend"] == "simulated"
        assert snap["meta"]["events_recorded"] == 1
        assert snap["meta"]["crash"] is False
        assert snap["verdicts"] == {"global:a": "private"}
        assert snap["site_summary"]["global:a"]["written_bytes"] == 16
        assert snap["site_summary"]["global:a"]["epochs"] == 1

    def test_site_access_accumulation(self):
        rec = FlightRecorder()
        rec.note_site_accesses({"s": 8}, {})
        rec.note_site_accesses({"s": 8}, {"s": 2})
        totals = rec.site_totals["s"]
        assert totals["written_bytes"] == 16
        assert totals["read_live_in_bytes"] == 2
        assert totals["epochs"] == 2


def _run_with_flight(program, backend, flight_dir, **kwargs):
    executor = make_executor(backend, program.module, program.plan,
                             workers=kwargs.pop("workers", 4),
                             flight_dir=str(flight_dir), **kwargs)
    result = executor.run(program.entry, program.ref_args)
    return executor, result


class TestDumpLifecycle:
    def test_clean_run_writes_nothing(self, tmp_path):
        program = prepare(SRC, "clean", args=(24,))
        executor, _ = _run_with_flight(program, "simulated", tmp_path)
        assert executor.flight_dump_path is None
        assert list(tmp_path.iterdir()) == []

    def test_misspec_run_dumps_and_validates(self, tmp_path):
        program = prepare(SRC, "dumped", args=(24,))
        executor, _ = _run_with_flight(program, "simulated", tmp_path,
                                       misspec_period=7, misspec_burst=14)
        path = tmp_path / "dumped.simulated.flight.jsonl"
        assert executor.flight_dump_path == str(path)
        report = schema.validate_flight(str(path))
        assert report["errors"] == []
        assert report["kinds"]["meta"] == 1
        assert report["kinds"]["event"] >= 2

    def test_dump_round_trips_to_same_diagnosis(self, tmp_path):
        program = prepare(SRC, "rt", args=(24,))
        executor, _ = _run_with_flight(program, "simulated", tmp_path,
                                       misspec_period=7, misspec_burst=14)
        live = executor.flight_snapshot()
        loaded = load_dump(executor.flight_dump_path)
        assert loaded["verdicts"] == live["verdicts"]
        assert loaded["heap_map"] == live["heap_map"]
        assert [d.to_dict() for d in explain_snapshot(loaded)] == \
            [d.to_dict() for d in explain_snapshot(live)]

    def test_crash_dump_marked(self, tmp_path, monkeypatch):
        program = prepare(SRC, "crashy", args=(24,))
        executor = make_executor("simulated", program.module, program.plan,
                                 workers=4, flight_dir=str(tmp_path))

        def boom(entry, args):
            executor.runtime.recorder.record("epoch", outcome="commit")
            raise RuntimeError("host bug")

        monkeypatch.setattr(executor, "_run_guest", boom)
        with pytest.raises(RuntimeError):
            executor.run(program.entry, program.ref_args)
        loaded = load_dump(executor.flight_dump_path)
        assert loaded["meta"]["crash"] is True
        assert schema.validate_flight(executor.flight_dump_path)["errors"] == []

    def test_env_var_names_dump_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        program = prepare(SRC, "envdir", args=(24,))
        result = program.execute(workers=4, misspec_period=9,
                                 misspec_burst=9)
        assert result.flight_dump == \
            str(tmp_path / "envdir.simulated.flight.jsonl")

    def test_flight_false_disables_recorder(self):
        program = prepare(SRC, "off", args=(24,))
        result = program.execute(workers=4, misspec_period=9,
                                 misspec_burst=9, flight=False)
        assert result.forensics["events"] == []
        assert result.flight_dump is None


class TestRunMetadata:
    def test_snapshot_meta_identifies_run(self):
        import repro

        program = prepare(SRC, "meta", args=(24,))
        result = program.execute(workers=3)
        meta = result.forensics["meta"]
        assert meta["repro_version"] == repro.__version__
        assert meta["workload"] == "meta"
        assert meta["fingerprint"] == program.fingerprint
        assert meta["backend"] == "simulated"
        assert meta["workers"] == 3
        assert meta["adapt"] is False
        assert isinstance(meta["argv"], list)


@pytest.mark.parametrize("workload", ALL_WORKLOADS,
                         ids=[w.name for w in ALL_WORKLOADS])
def test_explain_backend_parity(workload, tmp_path):
    """Under injected misspeculation bursts, both backends must produce
    bit-identical diagnoses, each naming the injected static site."""
    per_backend = {}
    for backend in ("simulated", "process"):
        program = prepare(workload.source, workload.name,
                          args=workload.train, ref_args=workload.train)
        _, result = _run_with_flight(program, backend, tmp_path / backend,
                                     misspec_period=6, misspec_burst=18)
        dump = tmp_path / backend / \
            f"{workload.name}.{backend}.flight.jsonl"
        assert dump.is_file()
        per_backend[backend] = [d.to_dict()
                                for d in explain_snapshot(load_dump(dump))]
    sim, proc = per_backend["simulated"], per_backend["process"]
    assert sim, f"{workload.name}: injection produced no diagnoses"
    assert sim == proc
    for d in sim:
        assert d["injected"] is True
        assert d["site"], f"{workload.name}: diagnosis without a site"
        assert d["heap_tag"] == int(HeapKind.PRIVATE)
        assert d["heap"] == "private"


class TestGenuineConflictForensics:
    """Real (non-injected) shadow-memory conflicts carry full context:
    iteration pair, shadow-code transition, named object."""

    @pytest.fixture
    def runtime(self):
        prog = prepare(SRC, "forensic_rt", args=(16,))
        executor = DOALLExecutor(prog.module, prog.plan, workers=2)
        rt = executor.runtime
        rt.begin_invocation(2)
        yield rt
        if rt.speculating:
            rt.end_invocation()

    def test_old_write_read_context(self, runtime):
        """Phase 1: reading a byte whose shadow code says an earlier
        epoch's iteration wrote it."""
        w0 = runtime.workers[0]
        w0.shadow.on_write(0, 4, timestamp_for(0, 0), 0)
        w0.epoch_written_offsets.update(range(0, 4))
        runtime.checkpoint(0, 2)
        with pytest.raises(Misspeculation) as ei:
            w0.shadow.on_read(0, 4, timestamp_for(0, 0), 2)
        exc = runtime.capture_conflict_context(w0, ei.value)
        ctx = exc.context
        assert ctx is not None
        assert ctx["heap_tag"] == int(HeapKind.PRIVATE)
        assert ctx["object"] is not None
        assert ctx["shadow_code"] is not None
        runtime.record_misspeculation(exc)
        snap = runtime.recorder.snapshot(heap_map=[], site_heaps={},
                                         crash=False)
        (diag,) = explain_snapshot(snap)
        assert diag.kind == "privacy"
        assert diag.transition is not None
        assert "read" in diag.transition

    def test_cross_worker_flow_context(self, runtime):
        """Phase 2: checkpoint-time cross-worker flow names both the
        writing and the reading worker."""
        w0, w1 = runtime.workers
        w1.shadow.on_write(0, 4, timestamp_for(1, 0), 1)
        w1.epoch_written_offsets.update(range(0, 4))
        w0.shadow.on_read(0, 4, timestamp_for(0, 0), 0)
        with pytest.raises(Misspeculation) as ei:
            runtime.checkpoint(0, 2)
        ctx = ei.value.context
        assert ctx is not None
        assert ctx["writer_wid"] == 1
        assert ctx["reader_wid"] == 0
        assert ctx["writer_iteration"] == 1
        line = summarize_context(ei.value.kind, ei.value.detail, ctx)
        assert "worker 1 wrote" in line
        assert "worker 0 read" in line

    def test_injection_never_feeds_demotion(self):
        """Injected misspeculations carry context for the diagnosis but
        must not strike (and eventually demote) a real site."""
        program = prepared_counter_program(32)
        controller = SpeculationController(loop=str(program.plan.ref),
                                           workload="counter")
        executor = make_executor("simulated", program.module, program.plan,
                                 workers=4, misspec_period=5,
                                 controller=controller)
        executor.run(program.entry, program.ref_args)
        assert controller.site_strikes == {}


class TestControllerDiagnosis:
    def test_demotion_carries_diagnosis(self):
        c = SpeculationController(loop="main:1", workload="t")
        line = "privacy at private+3 [site global:a, heap private]: x"
        for i in range(c.config.demote_after):
            c.note_misspec("privacy", i, "global:a", line)
        summary = c.summary()
        assert "global:a" in summary["demotions"]
        assert summary["demotion_diagnoses"]["global:a"] == line

    def test_note_misspec_diagnosis_optional(self):
        c = SpeculationController(loop="main:1", workload="t")
        c.note_misspec("privacy", 0, "global:a")  # legacy 3-arg call
        assert c.site_strikes["global:a"] == 1


class TestSchemaMalformed:
    def _flight_errors(self, tmp_path, lines):
        p = tmp_path / "f.jsonl"
        p.write_text("\n".join(lines) + "\n")
        return schema.validate_flight(str(p))["errors"]

    META = json.dumps({"kind": "meta", "flight_format": 1, "crash": False})

    def test_first_record_must_be_meta(self, tmp_path):
        errs = self._flight_errors(
            tmp_path, [json.dumps({"kind": "verdicts", "site_heaps": {}}),
                       self.META])
        assert any("first record" in e for e in errs)

    def test_unknown_record_kind(self, tmp_path):
        errs = self._flight_errors(
            tmp_path, [self.META, json.dumps({"kind": "wat"})])
        assert any("unknown record kind" in e for e in errs)

    def test_unknown_event_type_and_missing_seq(self, tmp_path):
        errs = self._flight_errors(
            tmp_path,
            [self.META,
             json.dumps({"kind": "event", "data": {"event": "nope"}})])
        assert any("unknown event type" in e for e in errs)
        assert any("seq" in e for e in errs)

    def test_misspec_event_requires_kind_and_iteration(self, tmp_path):
        errs = self._flight_errors(
            tmp_path,
            [self.META,
             json.dumps({"kind": "event",
                         "data": {"event": "misspec", "seq": 0}})])
        assert any("missing kind" in e for e in errs)
        assert any("missing iteration" in e for e in errs)

    def test_invalid_json_and_empty(self, tmp_path):
        errs = self._flight_errors(tmp_path, [self.META, "{nope"])
        assert any("invalid JSON" in e for e in errs)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert any("no records" in e
                   for e in schema.validate_flight(str(empty))["errors"])

    def test_load_dump_raises_with_line_number(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text(self.META + "\n{broken\n")
        with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
            load_dump(p)

    def test_explain_payload_errors(self, tmp_path):
        p = tmp_path / "e.json"
        p.write_text(json.dumps({
            "explain_format": "one", "diagnoses": [
                {"kind": 3, "iteration": "x", "injected": "y",
                 "site": 7, "heap_tag": "z"}]}))
        errs = schema.validate_explain(str(p))["errors"]
        assert any("explain_format" in e for e in errs)
        assert any("meta" in e for e in errs)
        assert sum("diagnoses[0]" in e for e in errs) >= 4

    def test_explain_payload_clean(self, tmp_path):
        program = prepare(SRC, "okjson", args=(24,))
        result = program.execute(workers=4, misspec_period=9,
                                 misspec_burst=9)
        from repro.forensics.explain import to_json

        snap = result.forensics
        payload = to_json(snap, explain_snapshot(snap))
        p = tmp_path / "ok.json"
        p.write_text(json.dumps(payload))
        report = schema.validate_explain(str(p))
        assert report["errors"] == []
        assert report["diagnoses"] >= 1


class TestHtmlReport:
    def test_report_is_self_contained(self):
        program = prepare(SRC, "rep", args=(24,))
        result = program.execute(workers=4, misspec_period=7,
                                 misspec_burst=14)
        snap = result.forensics
        html_doc = render_html(snap, explain_snapshot(snap))
        assert html_doc.startswith("<!DOCTYPE html>")
        # No external assets: everything inline.
        assert "http://" not in html_doc and "https://" not in html_doc
        assert "<script src" not in html_doc and "<link" not in html_doc
        for section in ("Logical heap address space", "Epoch outcomes",
                        "Conflicts", "Controller decisions"):
            assert section in html_doc
        assert "private" in html_doc

    def test_clean_report_renders(self):
        program = prepare(SRC, "repclean", args=(24,))
        result = program.execute(workers=4)
        html_doc = render_html(result.forensics,
                               explain_snapshot(result.forensics))
        assert "clean run" in html_doc

    def test_render_text_clean(self):
        program = prepare(SRC, "textclean", args=(24,))
        result = program.execute(workers=4)
        text = render_text(result.forensics,
                           explain_snapshot(result.forensics))
        assert "nothing to explain" in text


class TestTracerSink:
    def test_partial_trace_survives_unclean_exit(self, tmp_path):
        """An unhandled crash must still leave the streamed JSONL on
        disk (flushed by the atexit hook)."""
        out = tmp_path / "partial.trace.jsonl"
        code = (
            "from repro import obs\n"
            "obs.enable()\n"
            f"obs.TRACER.open_sink({str(out)!r})\n"
            "obs.TRACER.instant('x.one', cat='t')\n"
            "obs.TRACER.instant('x.two', cat='t')\n"
            "raise RuntimeError('crash before write_jsonl')\n"
        )
        proc = subprocess.run([sys.executable, "-c", code],
                              capture_output=True, text=True,
                              cwd="/root/repo/src")
        assert proc.returncode != 0
        lines = [json.loads(l) for l in out.read_text().splitlines()]
        kinds = [l["kind"] for l in lines]
        assert kinds[0] == "meta"
        assert kinds.count("instant") == 2

    def test_streamed_then_finalised(self, tmp_path):
        from repro import obs

        out = tmp_path / "t.trace.jsonl"
        obs.enable()
        try:
            obs.TRACER.set_run_metadata(workload="sinktest")
            obs.TRACER.open_sink(out)
            obs.TRACER.instant("x.mid", cat="t")
            # Streamed immediately: header + the event, no close needed.
            obs.TRACER.close_sink()
            streamed = [json.loads(l) for l in out.read_text().splitlines()]
            assert streamed[0]["attrs"]["events"] == -1
            assert streamed[0]["attrs"]["run"]["workload"] == "sinktest"
            n = obs.TRACER.write_jsonl(out)
            final = [json.loads(l) for l in out.read_text().splitlines()]
            assert final[0]["attrs"]["events"] == n
        finally:
            obs.disable()
        assert schema.validate_jsonl(str(out))["errors"] == []


class TestExplainCli:
    @pytest.fixture
    def prog_file(self, tmp_path):
        p = tmp_path / "prog.c"
        p.write_text(SRC)
        return str(p)

    def _main(self, argv):
        from repro.__main__ import main

        return main(argv)

    def test_explain_names_injected_site(self, prog_file, capsys):
        rc = self._main(["explain", prog_file, "--args", "24",
                         "--workers", "4", "--misspec-period", "7",
                         "--misspec-burst", "14"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "misspeculation(s) diagnosed" in out
        assert "site:" in out
        assert "heap:" in out

    def test_explain_clean_run(self, prog_file, capsys):
        rc = self._main(["explain", prog_file, "--args", "24",
                         "--workers", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "nothing to explain" in out

    def test_explain_artifacts(self, prog_file, tmp_path, capsys):
        dump_dir = tmp_path / "fl"
        json_out = tmp_path / "d.json"
        html_out = tmp_path / "d.html"
        rc = self._main(["explain", prog_file, "--args", "24",
                         "--workers", "4", "--misspec-period", "7",
                         "--misspec-burst", "14",
                         "--flight-dir", str(dump_dir),
                         "--json", str(json_out),
                         "--report", str(html_out)])
        assert rc == 0
        dump = dump_dir / "prog.simulated.flight.jsonl"
        assert dump.is_file()
        assert schema.validate_flight(str(dump))["errors"] == []
        assert schema.validate_explain(str(json_out))["errors"] == []
        assert html_out.read_text().startswith("<!DOCTYPE html>")

    def test_explain_unknown_target(self, capsys):
        rc = self._main(["explain", "not-a-workload"])
        assert rc == 2
        assert "neither a workload" in capsys.readouterr().err

    def test_run_report_flag(self, prog_file, tmp_path, capsys):
        html_out = tmp_path / "run.html"
        rc = self._main(["run", prog_file, "--args", "24", "--workers", "4",
                         "--report", str(html_out)])
        assert rc == 0
        assert "report:" in capsys.readouterr().out
        assert "Epoch outcomes" in html_out.read_text()

    def test_schema_cli_flight_mode(self, prog_file, tmp_path, capsys):
        dump_dir = tmp_path / "fl"
        self._main(["explain", prog_file, "--args", "24", "--workers", "4",
                    "--misspec-period", "7", "--misspec-burst", "14",
                    "--flight-dir", str(dump_dir)])
        capsys.readouterr()
        dump = dump_dir / "prog.simulated.flight.jsonl"
        rc = schema.main([str(dump), "--flight"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "record(s) valid" in out
