"""Shadow-heap metadata: the Table 2 transition rules, exhaustively."""

import pytest

from repro.interp.errors import Misspeculation
from repro.runtime.shadow import (
    LIVE_IN,
    OLD_WRITE,
    READ_LIVE_IN,
    TS_BASE,
    ShadowHeap,
    timestamp_for,
)


def ts(i, epoch_start=0):
    return timestamp_for(i, epoch_start)


class TestTimestamps:
    def test_encoding(self):
        assert ts(0) == 3
        assert ts(5) == 8
        assert ts(252) == 255

    def test_overflow_guard(self):
        with pytest.raises(ValueError):
            timestamp_for(300, 0)

    def test_epoch_relative(self):
        assert timestamp_for(505, 500) == TS_BASE + 5


class TestTable2Reads:
    """Row-by-row checks of Table 2 (Read column)."""

    def test_read_live_in(self):
        sh = ShadowHeap(16)
        sh.on_read(0, 4, ts(1), 1)
        assert all(b == READ_LIVE_IN for b in sh.meta[0:4])

    def test_read_old_write_misspeculates(self):
        sh = ShadowHeap(16)
        sh.meta[0] = OLD_WRITE
        with pytest.raises(Misspeculation, match="checkpoint"):
            sh.on_read(0, 1, ts(2), 2)

    def test_read_read_live_in_stays(self):
        sh = ShadowHeap(16)
        sh.on_read(0, 4, ts(1), 1)
        sh.on_read(0, 4, ts(1), 1)
        assert all(b == READ_LIVE_IN for b in sh.meta[0:4])

    def test_read_earlier_timestamp_misspeculates(self):
        sh = ShadowHeap(16)
        sh.on_write(0, 4, ts(1), 1)
        with pytest.raises(Misspeculation, match="flow"):
            sh.on_read(0, 4, ts(3), 3)

    def test_read_own_iteration_write_ok(self):
        sh = ShadowHeap(16)
        sh.on_write(0, 4, ts(2), 2)
        sh.on_read(0, 4, ts(2), 2)  # intra-iteration flow: fine
        assert all(b == ts(2) for b in sh.meta[0:4])


class TestTable2Writes:
    """Row-by-row checks of Table 2 (Write column)."""

    def test_overwrite_live_in(self):
        sh = ShadowHeap(16)
        sh.on_write(0, 8, ts(0), 0)
        assert all(b == ts(0) for b in sh.meta[0:8])

    def test_overwrite_old_write(self):
        sh = ShadowHeap(16)
        sh.meta[0:4] = bytes([OLD_WRITE]) * 4
        sh.on_write(0, 4, ts(1), 1)
        assert all(b == ts(1) for b in sh.meta[0:4])

    def test_overwrite_read_live_in_conservative_misspec(self):
        # The documented false positive: a read-live-in byte overwritten
        # before the checkpoint resolves it.
        sh = ShadowHeap(16)
        sh.on_read(0, 4, ts(1), 1)
        with pytest.raises(Misspeculation, match="conservative"):
            sh.on_write(0, 4, ts(1), 1)

    def test_overwrite_recent_write(self):
        sh = ShadowHeap(16)
        sh.on_write(0, 4, ts(1), 1)
        sh.on_write(0, 4, ts(4), 4)
        assert all(b == ts(4) for b in sh.meta[0:4])

    def test_partial_overlap_checked_per_byte(self):
        sh = ShadowHeap(16)
        sh.on_read(2, 2, ts(1), 1)  # bytes 2..3 read-live-in
        with pytest.raises(Misspeculation):
            sh.on_write(0, 4, ts(1), 1)  # overlaps byte 2


class TestCheckpointReset:
    def test_timestamps_become_old_write(self):
        sh = ShadowHeap(16)
        sh.on_write(0, 8, ts(3), 3)
        sh.reset_after_checkpoint()
        assert all(b == OLD_WRITE for b in sh.meta[0:8])

    def test_read_live_in_resets_to_live_in(self):
        sh = ShadowHeap(16)
        sh.on_read(0, 4, ts(2), 2)
        sh.reset_after_checkpoint()
        assert all(b == LIVE_IN for b in sh.meta[0:4])

    def test_tracking_sets_cleared(self):
        sh = ShadowHeap(16)
        sh.on_write(0, 4, ts(1), 1)
        sh.on_read(8, 4, ts(1), 1)
        sh.reset_after_checkpoint()
        assert not sh.written and not sh.read_live_in

    def test_fresh_epoch_reads_after_reset(self):
        sh = ShadowHeap(16)
        sh.on_write(0, 4, ts(1), 1)
        sh.reset_after_checkpoint()
        # Next epoch: reading the byte hits old-write -> loop-carried flow.
        with pytest.raises(Misspeculation):
            sh.on_read(0, 4, ts(0), 10)


class TestIntervals:
    def test_written_offsets(self):
        sh = ShadowHeap(32)
        sh.on_write(0, 4, ts(1), 1)
        sh.on_write(10, 2, ts(1), 1)
        assert sh.written_offsets() == {0, 1, 2, 3, 10, 11}

    def test_write_iterations_reports_latest(self):
        sh = ShadowHeap(32)
        sh.on_write(0, 4, ts(1), 1)
        sh.on_write(0, 4, ts(6), 6)
        pairs = dict(sh.write_iterations(epoch_start=0))
        assert pairs[0] == 6

    def test_epoch_start_offsets_iterations(self):
        sh = ShadowHeap(32)
        sh.on_write(0, 1, timestamp_for(503, 500), 503)
        pairs = dict(sh.write_iterations(epoch_start=500))
        assert pairs[0] == 503

    def test_growth_on_demand(self):
        sh = ShadowHeap(4)
        sh.on_write(100, 8, ts(1), 1)
        assert sh.size >= 108


class TestScenario:
    def test_privatization_pattern_validates(self):
        """dijkstra-style per-iteration reuse: write-then-read each
        iteration never misspeculates across many iterations."""
        sh = ShadowHeap(64)
        for i in range(100):
            t = timestamp_for(i % 250, (i // 250) * 250)
            sh.on_write(0, 32, t, i)
            sh.on_read(0, 32, t, i)
            if i % 250 == 249:
                sh.reset_after_checkpoint()

    def test_true_flow_dependence_always_caught(self):
        sh = ShadowHeap(64)
        sh.on_write(0, 8, ts(0), 0)
        with pytest.raises(Misspeculation):
            sh.on_read(0, 8, ts(1), 1)
