"""Property-based tests (hypothesis) on core invariants:

* interpreter integer arithmetic == two's-complement C semantics;
* the interval object map never mixes objects up;
* shadow-metadata state machine invariants (Table 2);
* deferred output always commits in iteration order;
* trip_count agrees with direct loop simulation.
"""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.interp.interpreter import Interpreter
from repro.interp.memory import AddressSpace
from repro.ir.instructions import BinOpKind, CmpPred
from repro.ir.types import I8, I32, I64, U8, U32, U64, IntType
from repro.parallel.executor import trip_count
from repro.runtime.iodefer import DeferredOutput
from repro.runtime.shadow import (
    LIVE_IN,
    OLD_WRITE,
    READ_LIVE_IN,
    TS_BASE,
    ShadowHeap,
    timestamp_for,
)

int64s = st.integers(min_value=-(2**63), max_value=2**63 - 1)
small_ints = st.integers(min_value=-(2**31), max_value=2**31 - 1)


def c_wrap(value, bits, signed):
    value &= (1 << bits) - 1
    if signed and value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


class TestIntegerSemantics:
    @given(a=int64s, b=int64s,
           ty=st.sampled_from([I8, I32, I64, U8, U32, U64]),
           kind=st.sampled_from([BinOpKind.ADD, BinOpKind.SUB, BinOpKind.MUL]))
    def test_wrapping_matches_c(self, a, b, ty, kind):
        a, b = ty.wrap(a), ty.wrap(b)
        result = Interpreter._int_binop(kind, a, b, ty)
        py = {"ADD": a + b, "SUB": a - b, "MUL": a * b}[kind.name]
        assert result == c_wrap(py, ty.bits, ty.signed)

    @given(a=int64s, b=int64s.filter(lambda x: x != 0),
           ty=st.sampled_from([I32, I64]))
    def test_division_truncates_toward_zero(self, a, b, ty):
        a, b = ty.wrap(a), ty.wrap(b)
        if b == 0:
            return
        q = Interpreter._int_binop(BinOpKind.DIV, a, b, ty)
        r = Interpreter._int_binop(BinOpKind.REM, a, b, ty)
        if ty.wrap(q * b + r) == a:  # exact relation, modulo wrap
            assert abs(r) < abs(b) or b in (-1, 1)

    @given(a=int64s, shift=st.integers(min_value=0, max_value=63))
    def test_unsigned_shift_right_is_logical(self, a, shift):
        a64 = U64.wrap(a)
        out = Interpreter._int_binop(BinOpKind.SHR, a64, shift, U64)
        assert out == (a64 >> shift)
        assert out >= 0

    @given(a=int64s, b=int64s, ty=st.sampled_from([I32, U32, I64]))
    def test_bitwise_ops_match_masked_python(self, a, b, ty):
        a, b = ty.wrap(a), ty.wrap(b)
        mask = (1 << ty.bits) - 1
        assert Interpreter._int_binop(BinOpKind.AND, a, b, ty) == \
            ty.wrap((a & mask) & (b & mask))
        assert Interpreter._int_binop(BinOpKind.XOR, a, b, ty) == \
            ty.wrap((a & mask) ^ (b & mask))

    @given(a=int64s, b=int64s)
    def test_comparison_total_order(self, a, b):
        lt = Interpreter._compare(CmpPred.LT, a, b)
        gt = Interpreter._compare(CmpPred.GT, a, b)
        eq = Interpreter._compare(CmpPred.EQ, a, b)
        assert lt + gt + eq == 1


class TestIntervalMap:
    @given(sizes=st.lists(st.integers(min_value=1, max_value=300),
                          min_size=1, max_size=30),
           data=st.data())
    def test_every_byte_resolves_to_its_object(self, sizes, data):
        space = AddressSpace()
        objs = [space.allocate(s, f"o{i}", "heap") for i, s in enumerate(sizes)]
        idx = data.draw(st.integers(min_value=0, max_value=len(objs) - 1))
        obj = objs[idx]
        off = data.draw(st.integers(min_value=0, max_value=obj.size - 1))
        found, found_off = space.find(obj.base + off)
        assert found is obj and found_off == off

    @given(sizes=st.lists(st.integers(min_value=1, max_value=100),
                          min_size=2, max_size=20))
    def test_objects_never_overlap(self, sizes):
        space = AddressSpace()
        objs = [space.allocate(s, f"o{i}", "heap") for i, s in enumerate(sizes)]
        spans = sorted((o.base, o.end) for o in objs)
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert a1 <= b0

    @given(value=int64s, size=st.sampled_from([1, 2, 4, 8]))
    def test_int_roundtrip(self, value, size):
        space = AddressSpace()
        obj = space.allocate(8, "o", "heap")
        wrapped = c_wrap(value, size * 8, signed=True)
        space.write_int(obj.base, wrapped, size)
        assert space.read_int(obj.base, size, signed=True) == wrapped

    @given(value=st.floats(allow_nan=False, allow_infinity=False))
    def test_float_roundtrip(self, value):
        space = AddressSpace()
        obj = space.allocate(8, "o", "heap")
        space.write_float(obj.base, value)
        assert space.read_float(obj.base) == value


@st.composite
def shadow_ops(draw):
    """A sequence of (is_write, offset, size, iteration) within one epoch."""
    n = draw(st.integers(min_value=1, max_value=30))
    ops = []
    iteration = 0
    for _ in range(n):
        iteration += draw(st.integers(min_value=0, max_value=3))
        ops.append((
            draw(st.booleans()),
            draw(st.integers(min_value=0, max_value=60)),
            draw(st.integers(min_value=1, max_value=8)),
            min(iteration, 200),
        ))
    return ops


class TestShadowInvariants:
    @given(ops=shadow_ops())
    def test_metadata_codes_always_valid(self, ops):
        from repro.interp.errors import Misspeculation

        sh = ShadowHeap(96)
        for is_write, off, size, iteration in ops:
            ts = timestamp_for(iteration, 0)
            try:
                if is_write:
                    sh.on_write(off, size, ts, iteration)
                else:
                    sh.on_read(off, size, ts, iteration)
            except Misspeculation:
                pass
            for b in sh.meta:
                assert b in (LIVE_IN, OLD_WRITE, READ_LIVE_IN) or b >= TS_BASE

    @given(ops=shadow_ops())
    def test_write_read_same_iteration_never_misspeculates(self, ops):
        sh = ShadowHeap(96)
        for _, off, size, iteration in ops:
            ts = timestamp_for(iteration, 0)
            sh.on_write(off, size, ts, iteration)
            sh.on_read(off, size, ts, iteration)  # must always be fine

    @given(ops=shadow_ops())
    def test_reset_clears_all_epoch_state(self, ops):
        from repro.interp.errors import Misspeculation

        sh = ShadowHeap(96)
        for is_write, off, size, iteration in ops:
            ts = timestamp_for(iteration, 0)
            try:
                (sh.on_write if is_write else sh.on_read)(off, size, ts, iteration)
            except Misspeculation:
                pass
        sh.reset_after_checkpoint()
        assert all(b in (LIVE_IN, OLD_WRITE) for b in sh.meta)
        assert not sh.written and not sh.read_live_in


class TestDeferredOutputProperty:
    @given(records=st.lists(
        st.tuples(st.integers(min_value=0, max_value=50), st.text(max_size=5)),
        max_size=40))
    def test_commit_order_is_iteration_order(self, records):
        d = DeferredOutput()
        for iteration, text in records:
            d.emit(iteration, text)
        sink = []
        d.commit_range(0, 51, sink.append)
        expected = [t for i, t in sorted(
            enumerate(records), key=lambda e: (e[1][0], e[0]))]
        assert sink == [t for _i, t in
                        sorted(records, key=lambda r: r[0])] or sink == [
            t for t in expected]  # stable within an iteration


class TestTripCountProperty:
    @given(init=st.integers(min_value=-100, max_value=100),
           bound=st.integers(min_value=-100, max_value=100),
           step=st.integers(min_value=1, max_value=7),
           pred=st.sampled_from([CmpPred.LT, CmpPred.LE]))
    def test_upcounting_matches_simulation(self, init, bound, step, pred):
        expected = 0
        i = init
        while (i < bound if pred is CmpPred.LT else i <= bound):
            expected += 1
            i += step
        assert trip_count(init, bound, step, pred, False) == expected

    @given(init=st.integers(min_value=-100, max_value=100),
           bound=st.integers(min_value=-100, max_value=100),
           step=st.integers(min_value=-7, max_value=-1),
           pred=st.sampled_from([CmpPred.GT, CmpPred.GE]))
    def test_downcounting_matches_simulation(self, init, bound, step, pred):
        expected = 0
        i = init
        while (i > bound if pred is CmpPred.GT else i >= bound):
            expected += 1
            i += step
        assert trip_count(init, bound, step, pred, False) == expected
