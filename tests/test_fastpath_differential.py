"""Differential tests: the compiled fast path vs the reference step path.

The closure-compiled interpreter (repro.interp.compile) must be
observationally identical to ``Interpreter.step()``: same guest output,
same step and simulated-cycle totals, same profiler records, and the
same behaviour through speculation, misspeculation, and recovery.  Every
workload (train input) and every genuine-misspeculation program runs
through both paths here.
"""

import pytest

from repro.bench.pipeline import prepare
from repro.frontend import compile_minic
from repro.interp.interpreter import Interpreter
from repro.profiling import profile_execution_time, profile_loop
from repro.profiling.serialize import hot_report_to_dict, profile_to_dict
from repro.workloads import ALL_WORKLOADS

import test_genuine_misspeculation as misspec

WORKLOAD_IDS = [w.name for w in ALL_WORKLOADS]

MISSPEC_PROGRAMS = [
    ("privacy", misspec.TestPrivacyViolation.SRC, (24, 0), (24, 1)),
    ("value_pred", misspec.TestValuePredictionViolation.SRC, (24, 0), (24, 1)),
    ("lifetime", misspec.TestLifetimeViolation.SRC, (24, 0), (24, 1)),
    ("control", misspec.TestControlSpeculationViolation.SRC, (24,), (48,)),
    ("separation", misspec.TestSeparationViolation.SRC, (18,), (40,)),
]


def _interpret(module, args, compiled):
    interp = Interpreter(module, compiled=compiled)
    rv = interp.run("main", tuple(args))
    return rv, interp


@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=WORKLOAD_IDS)
class TestWorkloadExecution:
    def test_output_steps_cycles_identical(self, workload):
        module = compile_minic(workload.source, workload.name)
        rv_step, i_step = _interpret(module, workload.train, compiled=False)
        rv_fast, i_fast = _interpret(module, workload.train, compiled=True)
        assert rv_step == rv_fast
        assert "".join(i_step.output) == "".join(i_fast.output)
        assert i_step.steps == i_fast.steps
        assert i_step.cycles == i_fast.cycles


@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=WORKLOAD_IDS)
class TestProfilerRecords:
    def test_profiles_identical(self, workload, monkeypatch):
        reports = {}
        profiles = {}
        for mode in ("step", "fast"):
            monkeypatch.setenv("REPRO_INTERP", mode)
            module = compile_minic(workload.source, workload.name)
            report = profile_execution_time(module, args=workload.train)
            ref = report.hottest(top_level_only=False)[0].ref
            profile = profile_loop(module, ref, args=workload.train)
            reports[mode] = hot_report_to_dict(report)
            profiles[mode] = profile_to_dict(profile)
        assert reports["step"] == reports["fast"]
        assert profiles["step"] == profiles["fast"]


@pytest.mark.parametrize(
    "name,src,train,ref", MISSPEC_PROGRAMS,
    ids=[p[0] for p in MISSPEC_PROGRAMS])
class TestMisspeculationPrograms:
    def test_pipeline_identical(self, name, src, train, ref, monkeypatch):
        results = {}
        for mode in ("step", "fast"):
            monkeypatch.setenv("REPRO_INTERP", mode)
            prog = prepare(src, f"diff_{name}_{mode}", args=train,
                           ref_args=ref, use_cache=False)
            result = prog.execute(workers=4)
            results[mode] = (prog, result)
        p_step, r_step = results["step"]
        p_fast, r_fast = results["fast"]
        assert p_step.sequential.cycles == p_fast.sequential.cycles
        assert p_step.sequential.output == p_fast.sequential.output
        assert r_step.return_value == r_fast.return_value
        assert "".join(r_step.output) == "".join(r_fast.output)
        # The executor's simulated clocks are built from interpreter cycle
        # deltas, including on misspeculation/recovery paths — identical
        # wall cycles prove the fast path's bulk cycle accounting rolls
        # back exactly where the reference path stops.
        assert r_step.total_wall_cycles == r_fast.total_wall_cycles
        assert (r_step.runtime_stats.misspec_count()
                == r_fast.runtime_stats.misspec_count())
        assert (r_step.runtime_stats.recoveries
                == r_fast.runtime_stats.recoveries)


class TestTimeoutParity:
    SRC = """
    int main(int n) {
        int acc = 0;
        for (int i = 0; i < n; i++) { acc += i; }
        return acc;
    }
    """

    def test_guest_timeout_at_same_step(self):
        from repro.interp.errors import GuestTimeout

        module = compile_minic(self.SRC, "budget")
        baseline = Interpreter(module, compiled=False)
        baseline.run("main", (64,))
        total = baseline.steps
        for budget in (total - 1, total // 2, 7):
            counts = {}
            for compiled in (False, True):
                interp = Interpreter(module, max_steps=budget,
                                     compiled=compiled)
                with pytest.raises(GuestTimeout):
                    interp.run("main", (64,))
                counts[compiled] = (interp.steps, interp.cycles)
            assert counts[False] == counts[True]

    def test_guest_fault_at_same_step(self):
        src = """
        int a[4];
        int main(int n) {
            int acc = 0;
            for (int i = 0; i < n; i++) { acc += a[i]; }
            return acc;
        }
        """
        from repro.interp.errors import GuestFault

        module = compile_minic(src, "fault")
        counts = {}
        for compiled in (False, True):
            interp = Interpreter(module, compiled=compiled)
            with pytest.raises(GuestFault):
                interp.run("main", (100,))
            counts[compiled] = (interp.steps, interp.cycles)
        assert counts[False] == counts[True]
