"""Shared helpers for the test suite."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.frontend import compile_minic
from repro.interp import Interpreter


def run_source(source: str, args: Sequence[object] = (),
               entry: str = "main", promote: bool = True):
    """Compile and run MiniC; returns (return value, output text, interp)."""
    module = compile_minic(source, "test", promote=promote)
    interp = Interpreter(module)
    rv = interp.run(entry, tuple(args))
    return rv, "".join(interp.output), interp


def run_expr(expr: str, decls: str = "") -> int:
    """Evaluate an int expression in a tiny main."""
    source = f"{decls}\nlong main() {{ return {expr}; }}\n"
    rv, _out, _ = run_source(source)
    return rv


def run_double_expr(expr: str, decls: str = "") -> float:
    source = f"{decls}\ndouble main() {{ return {expr}; }}\n"
    rv, _out, _ = run_source(source)
    return rv


SUM_LOOP = """
int main(int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) { acc = acc + i; }
    return acc;
}
"""


def prepared_counter_program(n: int = 32):
    """A minimal privatizable program for executor tests: reuses a global
    scratch array across iterations."""
    source = """
    int scratch[64];
    int out[64];

    int main(int n) {
        for (int i = 0; i < n; i++) {
            for (int j = 0; j < 64; j++) { scratch[j] = i * 64 + j; }
            int acc = 0;
            for (int r = 0; r < 6; r++) {
                for (int j = 0; j < 64; j++) { acc = acc + scratch[j] % 17; }
            }
            out[i] = acc;
        }
        int total = 0;
        for (int i = 0; i < n; i++) { total = total + out[i]; }
        printf("%d\\n", total);
        return total;
    }
    """
    from repro.bench.pipeline import prepare

    return prepare(source, "counter", args=(n,))
