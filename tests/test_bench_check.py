"""The bench regression sentinel (`python -m repro bench-check`)."""

import json
from pathlib import Path

import pytest

from repro.bench.check import (
    check_trajectory,
    extract_metrics,
    main as check_main,
    render_report,
)

REPO_BENCH = Path(__file__).resolve().parent.parent / "BENCH_interp.json"


def _run(fast_ips, quick=False, **extra):
    entry = {"quick": quick,
             "interp": [{"workload": "w", "fast_ips": fast_ips}]}
    entry.update(extra)
    return entry


def _trajectory(*fast_ips, quick=False):
    return {"benchmark": "interp",
            "runs": [_run(v, quick=quick) for v in fast_ips]}


class TestExtractMetrics:
    def test_flattens_all_sections(self):
        run = {
            "interp": [{"workload": "dijkstra", "fast_ips": 100.0}],
            "trace": {"tracing_off_ips": 200.0},
            "shadow": [{"label": "default",
                        "phase1": {"vec_mbps": 300.0},
                        "merge": {"vec_mbps": 400.0}}],
        }
        assert extract_metrics(run) == {
            "interp.dijkstra.fast_ips": 100.0,
            "trace.tracing_off_ips": 200.0,
            "shadow.default.phase1_mbps": 300.0,
            "shadow.default.merge_mbps": 400.0,
        }

    def test_tolerates_missing_sections(self):
        assert extract_metrics({}) == {}
        assert extract_metrics({"interp": None, "trace": None}) == {}

    def test_flattens_service_slos(self):
        run = {"service": {"cold_rps": 2.0, "warm_rps": 8.0,
                           "cache_hit_rps": 900.0, "cold_p99_s": 0.6,
                           "warm_p99_s": 0.12, "cache_hit_p99_s": 0.002}}
        assert extract_metrics(run) == {
            "service.cold_rps": 2.0,
            "service.warm_rps": 8.0,
            "service.cache_hit_rps": 900.0,
            "service.cold_p99_s": 0.6,
            "service.warm_p99_s": 0.12,
            "service.cache_hit_p99_s": 0.002,
        }


class TestCheckTrajectory:
    def test_synthetic_20pct_regression_fails(self):
        report = check_trajectory(_trajectory(100.0, 101.0, 99.0, 80.0))
        assert report["ok"] is False
        (row,) = report["rows"]
        assert row["ok"] is False
        assert row["ratio"] == pytest.approx(0.8)

    def test_steady_trajectory_passes(self):
        report = check_trajectory(_trajectory(100.0, 101.0, 99.0, 98.0))
        assert report["ok"] is True

    def test_noise_floor_within_historical_range(self):
        # 80 is >15% below the median (100) but not below the worst
        # sample ever recorded (75): machine noise, not a regression.
        report = check_trajectory(_trajectory(100.0, 75.0, 102.0, 80.0))
        assert report["ok"] is True

    def test_below_floor_and_median_fails(self):
        report = check_trajectory(_trajectory(100.0, 95.0, 102.0, 70.0))
        assert report["ok"] is False

    def test_min_history_skips_young_metrics(self):
        report = check_trajectory(_trajectory(100.0, 99.0, 80.0))
        assert report["ok"] is True  # only 2 prior samples: not gated
        assert report["rows"] == []
        (skip,) = report["skipped"]
        assert skip["samples"] == 2

    def test_quick_and_full_histories_are_separate(self):
        runs = ([_run(50.0, quick=True)] * 3
                + [_run(100.0), _run(101.0), _run(99.0), _run(98.0)])
        report = check_trajectory({"runs": runs})
        assert report["ok"] is True
        (row,) = report["rows"]
        assert row["samples"] == 3  # the quick=True runs were excluded

    def test_empty_trajectory_is_an_error(self):
        assert check_trajectory({"runs": []})["error"]
        assert check_trajectory({})["error"]

    def test_threshold_is_configurable(self):
        traj = _trajectory(100.0, 100.0, 100.0, 89.0)
        assert check_trajectory(traj, threshold=0.10)["ok"] is False
        assert check_trajectory(traj, threshold=0.15)["ok"] is True


class TestLowerIsBetterGate:
    """``service.<tier>_p99_s`` latency SLOs regress *upward*: the gate
    is ``latest <= max(median * 1.15, max(history))``."""

    def _traj(self, *p99s):
        return {"benchmark": "interp",
                "runs": [{"quick": False, "service": {"warm_p99_s": v}}
                         for v in p99s]}

    def test_p99_blowup_is_a_regression(self):
        report = check_trajectory(self._traj(0.10, 0.11, 0.09, 0.30))
        assert report["ok"] is False
        (row,) = report["rows"]
        assert row["metric"] == "service.warm_p99_s"
        assert row["direction"] == "lower"
        assert row["ok"] is False

    def test_p99_within_tolerance_passes(self):
        # median 0.10, gate max(0.115, 0.11) = 0.115: 0.11 is fine.
        report = check_trajectory(self._traj(0.10, 0.11, 0.09, 0.11))
        assert report["ok"] is True

    def test_p99_within_historical_ceiling_passes(self):
        # 0.14 is >15% above the median (0.10) but not above the worst
        # sample ever recorded (0.15): noise, not a regression.
        report = check_trajectory(self._traj(0.10, 0.15, 0.09, 0.14))
        assert report["ok"] is True

    def test_p99_improvement_passes(self):
        report = check_trajectory(self._traj(0.10, 0.11, 0.09, 0.01))
        assert report["ok"] is True

    def test_rps_direction_is_unchanged(self):
        traj = {"runs": [{"quick": False, "service": {"warm_rps": v}}
                         for v in (100.0, 101.0, 99.0, 80.0)]}
        report = check_trajectory(traj)
        assert report["ok"] is False
        (row,) = report["rows"]
        assert row["direction"] == "higher"


class TestRenderReport:
    def test_report_lists_rows_and_skips(self):
        report = check_trajectory(_trajectory(100.0, 101.0, 99.0, 80.0))
        text = render_report(report)
        assert "interp.w.fast_ips" in text
        assert "REGRESSION" in text

    def test_report_surfaces_errors(self):
        assert "no runs" in render_report({"error": "trajectory has no runs",
                                           "rows": []})


class TestCli:
    def test_passes_on_committed_trajectory(self, capsys):
        assert REPO_BENCH.exists()
        assert check_main(["--bench", str(REPO_BENCH)]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_fails_on_synthetic_regression_fixture(self, tmp_path, capsys):
        fixture = tmp_path / "bench.json"
        fixture.write_text(json.dumps(_trajectory(100.0, 101.0, 99.0, 80.0)))
        assert check_main(["--bench", str(fixture)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert check_main(["--bench", str(tmp_path / "nope.json")]) == 2

    def test_invalid_json_exits_2(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{")
        assert check_main(["--bench", str(bad)]) == 2

    def test_json_report_written(self, tmp_path):
        fixture = tmp_path / "bench.json"
        fixture.write_text(json.dumps(_trajectory(100.0, 99.0, 101.0, 98.0)))
        out = tmp_path / "report.json"
        assert check_main(["--bench", str(fixture),
                           "--json", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["ok"] is True

    def test_repro_subcommand_delegates(self, capsys):
        from repro.__main__ import main as repro_main

        assert repro_main(["bench-check", "--bench", str(REPO_BENCH)]) == 0
        assert "bench-check:" in capsys.readouterr().out
