"""Runtime support system: logical heaps, validation intrinsics,
reduction merge, checkpoints, deferred I/O."""

import pytest

from repro.classify import HeapKind
from repro.interp import Misspeculation
from repro.interp.memory import heap_tag_of
from repro.runtime.iodefer import DeferredOutput


class TestDeferredOutput:
    def test_commit_in_iteration_order(self):
        d = DeferredOutput()
        d.emit(3, "c")
        d.emit(1, "a")
        d.emit(1, "a2")
        d.emit(2, "b")
        sink = []
        n = d.commit_range(0, 4, sink.append)
        assert sink == ["a", "a2", "b", "c"] and n == 4

    def test_partial_commit_keeps_rest(self):
        d = DeferredOutput()
        d.emit(0, "x")
        d.emit(5, "y")
        sink = []
        d.commit_range(0, 3, sink.append)
        assert sink == ["x"] and d.pending() == 1

    def test_squash_discards_speculative_output(self):
        d = DeferredOutput()
        d.emit(1, "keep")
        d.emit(7, "squash")
        d.squash_from(5)
        sink = []
        d.commit_range(0, 10, sink.append)
        assert sink == ["keep"]


@pytest.fixture
def harness():
    """A tiny transformed program + runtime, paused before the loop."""
    from repro.bench.pipeline import prepare

    src = """
    int scratch[8];
    int out[64];
    long total;
    int main(int n) {
        for (int i = 0; i < n; i++) {
            for (int j = 0; j < 8; j++) { scratch[j] = i + j; }
            int acc = 0;
            for (int j = 0; j < 8; j++) { acc = acc + scratch[j]; }
            out[i] = acc;
            total += acc;
            printf("%d\\n", acc);
        }
        printf("%ld\\n", total);
        return 0;
    }
    """
    return prepare(src, "harness", args=(16,))


class TestHeapPlacement:
    def test_globals_land_in_their_heaps(self, harness):
        from repro.parallel.executor import DOALLExecutor

        ex = DOALLExecutor(harness.module, harness.plan, workers=2)
        interp = ex.interp
        tags = {
            name: heap_tag_of(interp.global_addrs[harness.module.global_named(name)])
            for name in ("scratch", "out", "total")
        }
        assert tags["scratch"] == int(HeapKind.PRIVATE)
        assert tags["out"] == int(HeapKind.PRIVATE)
        assert tags["total"] == int(HeapKind.REDUX)

    def test_h_alloc_places_by_kind(self, harness):
        from repro.parallel.executor import DOALLExecutor

        ex = DOALLExecutor(harness.module, harness.plan, workers=2)
        impl = ex.interp.intrinsics["h_alloc"]

        class FakeInst:
            meta = {}

            def site_id(self):
                return "fake:1"

        addr = impl(ex.interp, FakeInst(), [64, int(HeapKind.SHORTLIVED)])
        assert heap_tag_of(addr) == int(HeapKind.SHORTLIVED)


class TestEndToEndRuntime:
    def test_output_matches_sequential(self, harness):
        result = harness.execute(workers=4)
        assert result.output == harness.sequential.output
        assert result.runtime_stats.misspec_count() == 0

    def test_reduction_merged_correctly(self, harness):
        result = harness.execute(workers=6)
        # final total printed after loop must match sequential
        assert result.output[-1] == harness.sequential.output[-1]

    def test_io_deferred_and_committed(self, harness):
        result = harness.execute(workers=4)
        stats = result.runtime_stats
        assert stats.io_deferred == 16  # one line per iteration
        # ...and they came out in iteration order:
        assert result.output[:-1] == harness.sequential.output[:-1]

    def test_checkpoints_taken(self, harness):
        result = harness.execute(workers=4, checkpoint_period=4)
        assert result.runtime_stats.checkpoints == 4

    def test_privacy_byte_counters(self, harness):
        result = harness.execute(workers=2)
        stats = result.runtime_stats
        assert stats.private_write_bytes > 0
        assert stats.private_read_bytes > 0

    def test_worker_count_does_not_change_results(self, harness):
        outs = {w: harness.execute(workers=w).output for w in (1, 3, 8)}
        assert outs[1] == outs[3] == outs[8] == harness.sequential.output

    def test_readonly_protection_restored_between_invocations(self):
        # Two invocations of a loop that reads a read-only global which is
        # rewritten between invocations (legal: outside the region).
        from repro.bench.pipeline import prepare

        src = """
        int cfg[4];
        int out[64];
        void pass(int n, int bias) {
            for (int i = 0; i < n; i++) {
                out[i] = cfg[i % 4] + bias;
                for (int j = 0; j < 10; j++) { out[i] += j; }
            }
        }
        int main(int n) {
            for (int k = 0; k < 4; k++) { cfg[k] = k; }
            pass(n, 0);
            for (int k = 0; k < 4; k++) { cfg[k] = k * 100; }
            pass(n, 1);
            printf("%d %d\\n", out[0], out[5]);
            return 0;
        }
        """
        prog = prepare(src, "two_invocations", args=(16,))
        result = prog.execute(workers=4)
        assert result.output == prog.sequential.output
        assert result.runtime_stats.invocations == 2
        assert result.runtime_stats.misspec_count() == 0
