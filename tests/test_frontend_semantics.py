"""MiniC end-to-end semantics: compile + interpret tiny programs and
check results against C semantics."""

import pytest

from repro.frontend.lexer import CompileError

from .helpers import run_double_expr, run_expr, run_source


class TestArithmetic:
    @pytest.mark.parametrize("expr,expect", [
        ("1 + 2 * 3", 7),
        ("(1 + 2) * 3", 9),
        ("10 / 3", 3),
        ("-10 / 3", -3),        # C truncates toward zero
        ("10 % 3", 1),
        ("-10 % 3", -1),        # sign follows dividend
        ("1 << 10", 1024),
        ("256 >> 4", 16),
        ("-8 >> 1", -4),        # arithmetic shift for signed
        ("0xF0 & 0x3C", 0x30),
        ("0xF0 | 0x0F", 0xFF),
        ("0xFF ^ 0x0F", 0xF0),
        ("~0", -1),
        ("-(5)", -5),
        ("!0", 1),
        ("!7", 0),
        ("1 < 2", 1),
        ("2 <= 1", 0),
        ("3 == 3", 1),
        ("3 != 3", 0),
        ("1 && 2", 1),
        ("1 && 0", 0),
        ("0 || 0", 0),
        ("0 || 9", 1),
        ("1 ? 10 : 20", 10),
        ("0 ? 10 : 20", 20),
    ])
    def test_int_expr(self, expr, expect):
        assert run_expr(expr) == expect

    def test_division_by_zero_faults(self):
        from repro.interp import GuestFault

        with pytest.raises(GuestFault, match="zero"):
            run_expr("1 / 0")

    def test_int_overflow_wraps(self):
        src = """
        int main() { int x = 2147483647; x = x + 1; return x < 0; }
        """
        rv, _, _ = run_source(src)
        assert rv == 1

    def test_unsigned_wraps_and_compares(self):
        src = """
        int main() {
            unsigned x = 0;
            x = x - 1;              /* wraps to 0xFFFFFFFF */
            unsigned y = 1;
            if (x > y) { return 1; }  /* unsigned comparison */
            return 0;
        }
        """
        rv, _, _ = run_source(src)
        assert rv == 1

    def test_unsigned_shift_is_logical(self):
        src = """
        int main() {
            unsigned x = 0x80000000;
            return (int)(x >> 31);
        }
        """
        rv, _, _ = run_source(src)
        assert rv == 1

    @pytest.mark.parametrize("expr,expect", [
        ("1.5 + 2.25", 3.75),
        ("3.0 / 2.0", 1.5),
        ("2.0 * 0.5 - 1.0", 0.0),
    ])
    def test_double_expr(self, expr, expect):
        assert run_double_expr(expr) == pytest.approx(expect)

    def test_int_to_double_promotion(self):
        assert run_double_expr("1 / 2.0") == pytest.approx(0.5)

    def test_double_to_int_truncates(self):
        assert run_expr("(long)2.9") == 2
        assert run_expr("(long)(0.0 - 2.9)") == -2


class TestShortCircuit:
    def test_and_skips_rhs(self):
        src = """
        int calls;
        int bump() { calls = calls + 1; return 1; }
        int main() { int r = 0 && bump(); return calls * 10 + r; }
        """
        rv, _, _ = run_source(src)
        assert rv == 0

    def test_or_skips_rhs(self):
        src = """
        int calls;
        int bump() { calls = calls + 1; return 0; }
        int main() { int r = 1 || bump(); return calls * 10 + r; }
        """
        rv, _, _ = run_source(src)
        assert rv == 1

    def test_rhs_evaluated_when_needed(self):
        src = """
        int calls;
        int bump() { calls = calls + 1; return 1; }
        int main() { int r = 1 && bump(); return calls * 10 + r; }
        """
        rv, _, _ = run_source(src)
        assert rv == 11


class TestControlFlow:
    def test_sum_loop(self):
        rv, _, _ = run_source(
            "int main(int n) { int a = 0; for (int i = 0; i < n; i++)"
            " { a += i; } return a; }", args=(10,))
        assert rv == 45

    def test_while_with_break(self):
        src = """
        int main() {
            int i = 0;
            while (1) { i++; if (i == 7) { break; } }
            return i;
        }
        """
        assert run_source(src)[0] == 7

    def test_continue(self):
        src = """
        int main() {
            int evens = 0;
            for (int i = 0; i < 10; i++) {
                if (i % 2) { continue; }
                evens++;
            }
            return evens;
        }
        """
        assert run_source(src)[0] == 5

    def test_nested_break_targets_inner(self):
        src = """
        int main() {
            int count = 0;
            for (int i = 0; i < 3; i++) {
                for (int j = 0; j < 100; j++) {
                    if (j == 2) { break; }
                    count++;
                }
            }
            return count;
        }
        """
        assert run_source(src)[0] == 6

    def test_recursion(self):
        src = """
        int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
        int main() { return fib(12); }
        """
        assert run_source(src)[0] == 144

    def test_early_return(self):
        src = """
        int f(int x) { if (x > 0) { return 1; } return -1; }
        int main() { return f(5) + f(-5); }
        """
        assert run_source(src)[0] == 0


class TestPointersAndArrays:
    def test_address_of_and_deref(self):
        src = """
        int main() { int x = 3; int* p = &x; *p = 9; return x; }
        """
        assert run_source(src)[0] == 9

    def test_pointer_arithmetic(self):
        src = """
        int main() {
            int a[4];
            for (int i = 0; i < 4; i++) { a[i] = i * i; }
            int* p = a;
            p = p + 2;
            return *p + p[1];
        }
        """
        assert run_source(src)[0] == 4 + 9

    def test_pointer_difference(self):
        src = """
        int main() { int a[10]; int* p = &a[7]; int* q = &a[2]; return (int)(p - q); }
        """
        assert run_source(src)[0] == 5

    def test_multidim_array(self):
        src = """
        int g[3][4];
        int main() {
            for (int i = 0; i < 3; i++)
                for (int j = 0; j < 4; j++)
                    g[i][j] = i * 10 + j;
            return g[2][3];
        }
        """
        assert run_source(src)[0] == 23

    def test_array_decay_to_param(self):
        src = """
        int sum(int* p, int n) {
            int a = 0;
            for (int i = 0; i < n; i++) { a += p[i]; }
            return a;
        }
        int main() { int a[3]; a[0] = 1; a[1] = 2; a[2] = 3; return sum(a, 3); }
        """
        assert run_source(src)[0] == 6

    def test_struct_members(self):
        src = """
        struct point { int x; int y; };
        int main() {
            struct point p;
            p.x = 3; p.y = 4;
            struct point* q = &p;
            q->y = 5;
            return p.x * 10 + p.y;
        }
        """
        assert run_source(src)[0] == 35

    def test_linked_list(self):
        src = """
        struct n { int v; struct n* next; };
        int main() {
            struct n* head = 0;
            for (int i = 1; i <= 4; i++) {
                struct n* c = (struct n*)malloc(sizeof(struct n));
                c->v = i; c->next = head; head = c;
            }
            int sum = 0;
            while (head != 0) {
                sum = sum * 10 + head->v;
                struct n* dead = head;
                head = head->next;
                free(dead);
            }
            return sum;
        }
        """
        assert run_source(src)[0] == 4321

    def test_char_array_and_string(self):
        src = """
        int main() {
            char* s = "abc";
            return s[0] + s[2];
        }
        """
        assert run_source(src)[0] == ord("a") + ord("c")

    def test_increment_pointer(self):
        src = """
        int main() {
            int a[3]; a[0] = 5; a[1] = 7; a[2] = 9;
            int* p = a;
            p++;
            return *p;
        }
        """
        assert run_source(src)[0] == 7


class TestGlobals:
    def test_zero_initialized(self):
        assert run_source("int g; int main() { return g; }")[0] == 0

    def test_scalar_initializer(self):
        assert run_source("int g = 41; int main() { return g + 1; }")[0] == 42

    def test_const_expr_initializer(self):
        assert run_source(
            "int g = 6 * 7; int main() { return g; }")[0] == 42

    def test_sizeof_initializer(self):
        src = "long g = sizeof(double); int main() { return (int)g; }"
        assert run_source(src)[0] == 8

    def test_double_global(self):
        src = "double g = 2.5; int main() { return (int)(g * 4.0); }"
        assert run_source(src)[0] == 10


class TestOutput:
    def test_printf_formats(self):
        src = r"""
        int main() {
            printf("%d %ld %u %x %c %s %.2f|", -3, 10, 7, 255, 65, "ok", 1.5);
            return 0;
        }
        """
        _, out, _ = run_source(src)
        assert out == "-3 10 7 ff A ok 1.50|"

    def test_printf_width(self):
        _, out, _ = run_source(
            'int main() { printf("%04d %02x", 7, 11); return 0; }')
        assert out == "0007 0b"

    def test_puts(self):
        _, out, _ = run_source('int main() { puts("hi"); return 0; }')
        assert out == "hi\n"


class TestSemanticErrors:
    @pytest.mark.parametrize("src,match", [
        ("int main() { return x; }", "undeclared"),
        ("int main() { int x; int x; return 0; }", "redeclaration"),
        ("int main() { f(); return 0; }", "undeclared function"),
        ("int main() { int x; x.y = 1; return 0; }", "non-struct"),
        ("void main() { return 3; }", "convert"),
        ("int main() { break; }", "break outside"),
        ("struct s { int a; }; int main() { struct s v; v.b = 1; return 0; }",
         "no field"),
    ])
    def test_rejected(self, src, match):
        with pytest.raises(CompileError, match=match):
            run_source(src)

    def test_arity_mismatch(self):
        src = "int f(int a) { return a; } int main() { return f(1, 2); }"
        with pytest.raises(CompileError, match="expects"):
            run_source(src)


class TestDeterminism:
    def test_prng_reproducible(self):
        src = """
        int main() {
            rand_seed(123);
            long a = rand_int();
            rand_seed(123);
            long b = rand_int();
            return a == b;
        }
        """
        assert run_source(src)[0] == 1

    def test_same_program_same_output(self):
        src = """
        int main() {
            rand_seed(5);
            long acc = 0;
            for (int i = 0; i < 10; i++) { acc = acc * 31 + rand_int() % 97; }
            printf("%ld", acc);
            return 0;
        }
        """
        out1 = run_source(src)[1]
        out2 = run_source(src)[1]
        assert out1 == out2
