"""Baselines: DOALL-only executor, LRPD applicability, dependence
speculation estimates."""

import pytest

from repro.baselines import (
    analyze_loops,
    estimate_dependence_speculation,
    judge_hot_loop,
    run_doall_only,
    select_compatible,
)
from repro.frontend import compile_minic

INDEPENDENT_SRC = """
int a[128];
int main(int n) {
    for (int i = 0; i < n; i++) { a[i] = i; }
    for (int i = 0; i < n; i++) {
        int acc = a[i];
        for (int r = 0; r < 300; r++) { acc = acc * 3 + r; }
        a[i] = acc;
    }
    int total = 0;
    for (int i = 0; i < n; i++) { total = total + a[i]; }
    printf("%d\\n", total);
    return 0;
}
"""

QUEUE_SRC = """
struct n { int v; struct n* next; };
struct n* head;
int out[128];
int main(int n) {
    for (int i = 0; i < n; i++) {
        struct n* c = (struct n*)malloc(sizeof(struct n));
        c->v = i; c->next = head; head = c;
        int acc = 0;
        while (head != 0) {
            acc += head->v;
            struct n* d = head;
            head = head->next;
            free(d);
        }
        out[i] = acc;
    }
    printf("%d\\n", out[3]);
    return 0;
}
"""


class TestDOALLOnlyAnalysis:
    def test_independent_loop_selected(self):
        mod = compile_minic(INDEPENDENT_SRC)
        candidates = analyze_loops(mod, args=(64,))
        selected = select_compatible(mod, candidates)
        assert selected  # the a[i] loops are provably independent

    def test_linked_structure_rejected(self):
        mod = compile_minic(QUEUE_SRC)
        candidates = analyze_loops(mod, args=(32,))
        selected = select_compatible(mod, candidates)
        assert not selected

    def test_nested_selection_avoids_overlap(self):
        src = """
        int a[64];
        int main(int n) {
            for (int i = 0; i < n; i++) {
                for (int j = 0; j < 64; j++) { a[j] += 1; }
            }
            return 0;
        }
        """
        mod = compile_minic(src)
        selected = select_compatible(mod, analyze_loops(mod, args=(16,)))
        # Inner a[j] += 1 is legal; the outer (reusing a) is not; never both.
        assert len(selected) <= 1


class TestDOALLOnlyExecution:
    def test_correct_output(self):
        result = run_doall_only(INDEPENDENT_SRC, "ind", args=(64,), workers=8)
        mod = compile_minic(INDEPENDENT_SRC)
        from repro.interp import Interpreter

        interp = Interpreter(mod)
        interp.run(args=(64,))
        assert result.output == interp.output

    def test_speedup_on_legal_program(self):
        from repro.bench.pipeline import run_sequential

        seq = run_sequential(INDEPENDENT_SRC, "ind", args=(64,))
        result = run_doall_only(INDEPENDENT_SRC, "ind", args=(64,), workers=8)
        assert result.speedup_over(seq.cycles) > 1.5

    def test_no_speedup_when_nothing_selected(self):
        from repro.bench.pipeline import run_sequential

        seq = run_sequential(QUEUE_SRC, "q", args=(32,))
        result = run_doall_only(QUEUE_SRC, "q", args=(32,), workers=8)
        assert not result.selected
        assert result.invocations == 0
        assert result.speedup_over(seq.cycles) == pytest.approx(1.0, rel=0.05)

    def test_output_identical_when_not_parallelized(self):
        result = run_doall_only(QUEUE_SRC, "q", args=(32,), workers=8)
        mod = compile_minic(QUEUE_SRC)
        from repro.interp import Interpreter

        interp = Interpreter(mod)
        interp.run(args=(32,))
        assert result.output == interp.output


class TestLRPD:
    def test_array_loop_applicable(self):
        verdict = judge_hot_loop(INDEPENDENT_SRC, "ind", args=(64,))
        assert verdict.applicable

    def test_linked_loop_inapplicable(self):
        verdict = judge_hot_loop(QUEUE_SRC, "q", args=(32,))
        assert not verdict.applicable
        assert any("dynamic allocation" in r or "pointer" in r
                   for r in verdict.reasons)


class TestDependenceSpeculation:
    def test_reuse_manifests_every_iteration(self):
        # §2: dijkstra-style reuse misspeculates constantly under naive
        # dependence speculation.
        est = estimate_dependence_speculation(QUEUE_SRC, "q", args=(32,))
        assert est.misspec_rate > 0.9

    def test_independent_loop_conflict_free(self):
        est = estimate_dependence_speculation(INDEPENDENT_SRC, "ind", args=(64,))
        assert est.misspec_rate == 0.0

    def test_projected_speedups(self):
        est = estimate_dependence_speculation(QUEUE_SRC, "q", args=(32,))
        assert est.projected_speedup(workers=24) < 1.0
        clean = estimate_dependence_speculation(INDEPENDENT_SRC, "ind", args=(64,))
        assert clean.projected_speedup(workers=24) == pytest.approx(24.0)


class TestCapabilityProbes:
    def test_table1_matrix_shape(self):
        from repro.bench.probes import run_capability_probes

        rows = run_capability_probes()
        result = {(r["technique"], r["probe"]): r["handles"] for r in rows}
        # Privateer handles everything.
        assert result[("privateer", "array")]
        assert result[("privateer", "linked-list")]
        assert result[("privateer", "reduction")]
        # LRPD is layout-limited to arrays/scalars.
        assert result[("lrpd", "array")]
        assert not result[("lrpd", "linked-list")]
        assert result[("lrpd", "reduction")]
        # Non-speculative DOALL handles none of the privatization probes.
        assert not result[("doall_only", "array")]
        assert not result[("doall_only", "linked-list")]
        assert not result[("doall_only", "reduction")]
