"""Unit and integration tests for the persistent worker-pool backend:
the shared-memory ring transport (wraparound, framing round-trip,
capacity knob), pool lifecycle (spawn-per-invocation, commit-delta
warm epochs, SIGKILL respawn, /dev/shm hygiene), the ``--pool-workers``
multiplexing mode, and the telemetry plane (stable worker ids in
``worker.N.*`` merges and the ``repro top`` dashboard).

Bit-exact parity against the simulated backend is enforced separately
in ``tests/test_backend_parity.py``; these tests cover the machinery
documented in docs/BACKENDS.md.
"""

import os
import signal
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.backend import BACKEND_ENV, BackendError, make_executor
from repro.parallel.pool_backend import PoolDOALLExecutor
from repro.parallel.process_backend import ProcessDOALLExecutor
from repro.parallel import pool_backend, shm_ring
from repro.parallel.shm_ring import (
    DEFAULT_RING_KB,
    MIN_RING_BYTES,
    RING_KB_ENV,
    ShmRing,
    pack_fragment_payload,
    payload_size,
    ring_capacity_from_env,
    unpack_fragment_payload,
)

from helpers import prepared_counter_program


def _shm_names():
    """Current repro-pool-* segments visible in /dev/shm (POSIX shm
    backing store on Linux); empty when the path doesn't exist."""
    try:
        return {n for n in os.listdir("/dev/shm")
                if "repro-pool-" in n}
    except FileNotFoundError:
        return set()


# -- ring capacity knob -------------------------------------------------------


class TestRingCapacityEnv:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(RING_KB_ENV, raising=False)
        assert ring_capacity_from_env() == DEFAULT_RING_KB * 1024

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(RING_KB_ENV, "512")
        assert ring_capacity_from_env() == 512 * 1024

    def test_clamped_to_minimum(self):
        assert ring_capacity_from_env("1") == MIN_RING_BYTES

    def test_malformed_value_fails_loudly(self):
        with pytest.raises(ValueError, match=RING_KB_ENV):
            ring_capacity_from_env("lots")

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            ring_capacity_from_env("0")
        with pytest.raises(ValueError, match="positive"):
            ring_capacity_from_env("-4")

    def test_empty_means_default(self):
        assert ring_capacity_from_env("") == DEFAULT_RING_KB * 1024


# -- bump-allocator ring ------------------------------------------------------


class TestShmRing:
    def _ring(self, capacity=4096):
        return ShmRing(f"repro-pool-test-{os.getpid()}-{time.monotonic_ns()}",
                       capacity, create=True)

    def test_alloc_is_epoch_scoped_and_never_wraps(self):
        """Every allocation since begin_epoch() is still live (one
        payload per hosted wid per epoch); an alloc that would wrap
        must refuse (pipe fallback) instead of overwriting one."""
        ring = self._ring(100)
        try:
            assert ring.alloc(60) == 0
            # 60 + 60 > 100: refused — wrapping to 0 would overwrite
            # the live first payload of this same epoch.
            assert ring.alloc(60) is None
            # The cursor is untouched by a refused alloc.
            assert ring.alloc(30) == 60
            # Next epoch: the parent has consumed everything; rewind.
            ring.begin_epoch()
            assert ring.alloc(60) == 0
        finally:
            ring.close(unlink=True)

    def test_alloc_exact_capacity(self):
        ring = self._ring(64)
        try:
            assert ring.alloc(64) == 0
            assert ring.alloc(64) is None
            ring.begin_epoch()
            assert ring.alloc(64) == 0
        finally:
            ring.close(unlink=True)

    def test_oversize_payload_returns_none(self):
        ring = self._ring(64)
        try:
            assert ring.alloc(65) is None
            # The cursor is untouched by a refused alloc.
            assert ring.alloc(10) == 0
        finally:
            ring.close(unlink=True)

    def test_refused_alloc_preserves_live_payload(self):
        """The corruption the no-wrap rule prevents: payload A is live,
        an overflowing payload B must not land on top of it."""
        ring = self._ring(64)
        try:
            off_a = ring.alloc(40)
            ring.write(off_a, b"A" * 40)
            assert ring.alloc(40) is None  # would have wrapped onto A
            view = ring.view(off_a, 40)
            try:
                assert bytes(view) == b"A" * 40
            finally:
                view.release()
        finally:
            ring.close(unlink=True)

    def test_close_warns_on_unreleased_view(self, caplog):
        """An unreleased memoryview pins the mapping; close() must
        surface that instead of silently leaking it."""
        import logging

        ring = self._ring(64)
        view = ring.view(0, 8)
        with caplog.at_level(logging.WARNING, logger="repro.shm_ring"):
            ring.close(unlink=True)
        try:
            assert any("still alive" in r.message for r in caplog.records)
        finally:
            view.release()
            ring.close(unlink=True)

    def test_write_and_view_round_trip(self):
        ring = self._ring(256)
        try:
            off = ring.alloc(5)
            ring.write(off, b"hello")
            view = ring.view(off, 5)
            assert bytes(view) == b"hello"
            view.release()
        finally:
            ring.close(unlink=True)

    def test_unlink_removes_segment(self):
        ring = self._ring(4096)
        name = ring.name
        ring.close(unlink=True)
        assert not any(name in n for n in _shm_names())


# -- fragment payload framing -------------------------------------------------


_runs2 = st.lists(
    st.tuples(st.integers(0, 1 << 40), st.integers(0, 1 << 40)),
    max_size=8).map(lambda rs: tuple(tuple(r) for r in rs))


class TestFragmentFraming:
    @settings(max_examples=60, deadline=None)
    @given(
        read_runs=_runs2,
        write_runs=st.lists(
            st.tuples(st.integers(0, 1 << 40), st.integers(0, 1 << 40),
                      st.integers(0, 250)),
            max_size=8).map(lambda rs: tuple(tuple(r) for r in rs)),
        epoch_runs=_runs2,
        kinds=st.binary(max_size=64),
        values=st.binary(max_size=64),
    )
    def test_round_trip(self, read_runs, write_runs, epoch_runs, kinds,
                        values):
        """pack -> unpack reproduces the exact EpochFragment container
        shapes (tuples of tuples, bytes blobs), via a plain buffer."""
        size = payload_size(len(read_runs), len(write_runs),
                            len(epoch_runs), len(kinds), len(values))
        buf = bytearray(size + 7)
        n = pack_fragment_payload(buf, 3, read_runs, write_runs,
                                  epoch_runs, kinds, values)
        assert n == size
        rr, wr, er, k, v = unpack_fragment_payload(
            memoryview(buf)[3:3 + size])
        assert rr == read_runs
        assert wr == write_runs
        assert er == epoch_runs
        assert k == kinds and v == values
        assert isinstance(k, bytes) and isinstance(v, bytes)

    def test_round_trip_through_shared_memory(self):
        """Same framing through an actual shm segment at a non-zero
        epoch offset — the production transport path for the second
        payload a multiplexed child ships in one epoch."""
        ring = ShmRing(f"repro-pool-test-{os.getpid()}-frame", 4096,
                       create=True)
        try:
            payload = (((0, 8), (16, 32)), ((0, 8, 2),), ((0, 32),),
                       b"\x01" * 8, bytes(range(8)))
            size = payload_size(2, 1, 1, 8, 8)
            ring.begin_epoch()
            assert ring.alloc(64) == 0  # an earlier same-epoch payload
            off = ring.alloc(size)
            assert off == 64
            pack_fragment_payload(ring.shm.buf, off, *payload)
            view = ring.view(off, size)
            try:
                assert unpack_fragment_payload(view) == payload
            finally:
                view.release()
        finally:
            ring.close(unlink=True)


# -- factory and construction -------------------------------------------------


class TestPoolExecutorConstruction:
    def test_factory_dispatch(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        prog = prepared_counter_program(8)
        ex = make_executor("pool", prog.module, prog.plan, workers=2)
        assert isinstance(ex, PoolDOALLExecutor)
        assert isinstance(ex, ProcessDOALLExecutor)  # inherits plumbing
        assert ex.backend_name == "pool"

    def test_env_dispatch(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "pool")
        prog = prepared_counter_program(8)
        ex = make_executor(None, prog.module, prog.plan, workers=2)
        assert isinstance(ex, PoolDOALLExecutor)

    def test_epoch_timeout_plumbing(self):
        prog = prepared_counter_program(8)
        ex = make_executor("pool", prog.module, prog.plan, workers=2,
                           epoch_timeout=9.5)
        assert ex.epoch_timeout == 9.5

    def test_pool_workers_defaults_to_workers(self):
        prog = prepared_counter_program(8)
        ex = make_executor("pool", prog.module, prog.plan, workers=3)
        assert ex.pool_size == 3

    def test_pool_workers_capped_at_workers(self):
        prog = prepared_counter_program(8)
        ex = make_executor("pool", prog.module, prog.plan, workers=2,
                           pool_workers=8)
        assert ex.pool_size == 2

    def test_pool_workers_must_be_positive(self):
        prog = prepared_counter_program(8)
        with pytest.raises(BackendError, match="pool-workers"):
            make_executor("pool", prog.module, prog.plan, workers=2,
                          pool_workers=0)

    def test_pipeline_rejects_pool_workers_on_other_backends(self):
        prog = prepared_counter_program(8)
        with pytest.raises(BackendError, match="pool backend"):
            prog.execute(workers=2, backend="process", pool_workers=2)


# -- end-to-end runs ----------------------------------------------------------


class TestPoolEndToEnd:
    def test_clean_run_matches_sequential(self):
        prog = prepared_counter_program(24)
        result = prog.execute(workers=4, backend="pool")
        assert result.output == prog.sequential.output
        assert result.runtime_stats.checkpoints > 0

    def test_one_spawn_per_clean_invocation(self):
        """The whole point: a clean multi-epoch run forks the pool once,
        not once per epoch."""
        prog = prepared_counter_program(32)
        ex = make_executor("pool", prog.module, prog.plan, workers=2,
                           checkpoint_period=4)
        result = ex.run(prog.entry, prog.ref_args)
        assert result.output == prog.sequential.output
        assert result.runtime_stats.checkpoints >= 4
        assert ex.pool_spawns == 1

    def test_respawn_after_recovery(self):
        """Every squash/recovery invalidates the resident image; the
        pool respawns and the run still completes correctly."""
        prog = prepared_counter_program(32)
        ex = make_executor("pool", prog.module, prog.plan, workers=2,
                           misspec_period=10)
        result = ex.run(prog.entry, prog.ref_args)
        assert result.output == prog.sequential.output
        misspecs = result.runtime_stats.misspec_count()
        assert misspecs > 0
        # Initial spawn plus one lazy respawn after each recovery that
        # still had epochs left to run.
        assert 2 <= ex.pool_spawns <= 1 + misspecs

    def test_pool_workers_multiplexing(self):
        """Fewer pool processes than workers: each child hosts several
        worker ids sequentially — output identical, one process."""
        prog = prepared_counter_program(24)
        ex = make_executor("pool", prog.module, prog.plan, workers=4,
                           pool_workers=1)
        result = ex.run(prog.entry, prog.ref_args)
        assert result.output == prog.sequential.output
        assert ex.pool_size == 1

    def test_ring_overflow_falls_back_to_pipe(self, monkeypatch):
        """A ring too small for any payload forces the (counted) pipe
        fallback without affecting results."""
        monkeypatch.setattr(pool_backend, "ring_capacity_from_env",
                            lambda env=None: 16)
        prog = prepared_counter_program(24)
        ex = make_executor("pool", prog.module, prog.plan, workers=2)
        result = ex.run(prog.entry, prog.ref_args)
        assert result.output == prog.sequential.output
        assert ex.ring_overflows > 0

    def test_multiplexed_epoch_sum_overflow_is_safe(self):
        """The review-flagged corruption scenario, in-process: a child
        hosting several wids ships one payload per wid per epoch; each
        payload fits the ring alone but the epoch sum does not.  The
        overflowing payload must take the counted pipe fallback and
        BOTH fragments must rebuild bit-exact (no silent overwrite of
        the still-live first payload)."""
        from repro.parallel.backend import WorkerEpochReport
        from repro.runtime.fragments import EpochFragment

        def frag(wid, fill):
            n = 50
            return EpochFragment(
                wid=wid, epoch_start=0,
                write_runs=((0, n, 0),),
                write_kinds=b"\x02" * n,
                write_values=bytes([fill]) * n,
                epoch_written_runs=((0, n),))

        frag_a, frag_b = frag(0, 0xAA), frag(1, 0xBB)
        one = payload_size(0, 1, 1, 50, 50)
        prog = prepared_counter_program(8)
        ex = make_executor("pool", prog.module, prog.plan, workers=2,
                           pool_workers=1)
        ring = ShmRing(
            f"repro-pool-test-{os.getpid()}-mux", one + 8, create=True)
        ex._rings = [ring]
        try:
            ring.begin_epoch()
            entry_a = ex._child_ship_fragment(
                0, WorkerEpochReport(wid=0, fragment=frag_a))
            entry_b = ex._child_ship_fragment(
                0, WorkerEpochReport(wid=1, fragment=frag_b))
            assert entry_a[1][0] == "ring"
            assert entry_b[1][0] == "pipe"
            # Rebuild AFTER shipping both: proves B's overflow did not
            # land on top of A's live ring payload.
            assert ex._rebuild_fragment(0, entry_a) == frag_a
            assert ex._rebuild_fragment(0, entry_b) == frag_b
            assert ex.ring_overflows == 1
        finally:
            ex._rings = None
            ring.close(unlink=True)

    def test_multiplexed_tiny_ring_end_to_end(self, monkeypatch):
        """End-to-end variant: size the ring so every payload fits
        alone but one epoch's multiplexed sum overflows — results stay
        correct, the ring is still used, and overflows are counted."""
        transports = []
        orig = PoolDOALLExecutor._rebuild_fragment

        def spy(self, cwid, entry):
            desc = entry[1]
            transports.append(
                (desc[0], desc[2] if desc[0] == "ring" else len(desc[1])))
            return orig(self, cwid, entry)

        monkeypatch.setattr(PoolDOALLExecutor, "_rebuild_fragment", spy)

        # Phase 1: discover real payload sizes with an ample ring.
        prog = prepared_counter_program(24)
        ex = make_executor("pool", prog.module, prog.plan, workers=4,
                           pool_workers=1)
        ex.run(prog.entry, prog.ref_args)
        sizes = [s for _, s in transports]
        assert sizes
        cap = max(sizes)

        # Phase 2: per-payload size <= cap < one epoch's 4-payload sum.
        transports.clear()
        monkeypatch.setattr(pool_backend, "ring_capacity_from_env",
                            lambda env=None: cap)
        ex2 = make_executor("pool", prog.module, prog.plan, workers=4,
                            pool_workers=1)
        result = ex2.run(prog.entry, prog.ref_args)
        assert result.output == prog.sequential.output
        kinds = {t for t, _ in transports}
        assert kinds == {"ring", "pipe"}
        assert ex2.ring_overflows > 0
        assert all(s <= cap for _, s in transports)

    def test_shutdown_leaves_no_shm_segments(self):
        """After run() returns, no repro-pool-* segment may remain in
        /dev/shm (rings are closed and unlinked in the finally)."""
        before = _shm_names()
        prog = prepared_counter_program(24)
        ex = make_executor("pool", prog.module, prog.plan, workers=2,
                           checkpoint_period=4)
        ex.run(prog.entry, prog.ref_args)
        assert ex._rings is None and not ex._children
        leaked = _shm_names() - before
        assert not leaked, f"leaked shared memory segments: {leaked}"

    def test_shutdown_unlinks_on_crash_too(self):
        before = _shm_names()
        prog = prepared_counter_program(8)
        ex = PoolDOALLExecutor(prog.module, prog.plan, workers=2)

        def boom(worker, i, init):
            raise ZeroDivisionError("synthetic pool child crash")

        ex._execute_iteration = boom
        with pytest.raises(RuntimeError, match="synthetic pool child crash"):
            ex.run("main", prog.ref_args)
        leaked = _shm_names() - before
        assert not leaked, f"leaked shared memory segments: {leaked}"

    def test_wedged_pool_hits_deadline(self):
        prog = prepared_counter_program(8)
        ex = PoolDOALLExecutor(prog.module, prog.plan, workers=2,
                               epoch_timeout=1.0)

        def wedge(worker, i, init):
            os.read(os.pipe()[0], 1)  # blocks forever

        ex._execute_iteration = wedge
        with pytest.raises(RuntimeError, match="did not report"):
            ex.run("main", prog.ref_args)


class TestWorkerDeathRespawn:
    def test_sigkilled_worker_respawns_and_run_completes(
            self, monkeypatch):
        """SIGKILL of a pool child mid-epoch squashes the epoch through
        the standard recovery path and respawns the pool; the run
        completes with the correct output (unlike the fork-per-epoch
        backend, which aborts)."""
        orig = PoolDOALLExecutor._child_slice

        def killer(self, worker, frame, epoch_start, epoch_end, init):
            report = orig(self, worker, frame, epoch_start, epoch_end, init)
            if worker.wid == 1 and epoch_start == 0:
                time.sleep(0.5)  # let the sibling's frame land first
                os.kill(os.getpid(), signal.SIGKILL)
            return report

        monkeypatch.setattr(PoolDOALLExecutor, "_child_slice", killer)
        prog = prepared_counter_program(24)
        ex = make_executor("pool", prog.module, prog.plan, workers=2,
                           checkpoint_period=6)
        result = ex.run(prog.entry, prog.ref_args)
        assert result.output == prog.sequential.output
        # The death was recorded as a fault misspeculation + recovery …
        faults = [m for m in result.runtime_stats.misspeculations
                  if m.kind == "fault"]
        assert faults and "died mid-epoch" in faults[0].detail
        assert result.runtime_stats.recoveries >= 1
        # … and the pool was re-forked.
        assert ex.pool_spawns >= 2


# -- telemetry plane ----------------------------------------------------------


class TestPoolTelemetry:
    def test_worker_metrics_merge_with_stable_wids(self):
        """worker.N.* labels on the pool backend key the *stable* pool
        worker ids; totals reconcile with the parent accounting."""
        from repro.obs.metrics import METRICS
        from repro.obs.trace import TRACER

        prog = prepared_counter_program(16)
        TRACER.enable()
        METRICS.reset()
        try:
            prog.execute(workers=2, backend="pool")
            snap = METRICS.snapshot()
        finally:
            TRACER.disable()
            TRACER.reset()
            METRICS.reset()
        for wid in (0, 1):
            assert snap[f"worker.{wid}.epoch.slices"]["value"] > 0
            assert snap[f"worker.{wid}.epoch.iterations"]["value"] > 0
        shipped = sum(snap[f"worker.{w}.epoch.iterations"]["value"]
                      for w in (0, 1))
        assert shipped == snap["executor.iterations.committed"]["value"]
        assert snap["pool.spawns"]["value"] >= 1

    def test_worker_epoch_spans_in_worker_pids(self):
        from repro.obs.trace import TRACER, WORKER_PID_BASE

        prog = prepared_counter_program(16)
        TRACER.enable()
        try:
            prog.execute(workers=2, backend="pool")
            worker_pids = {
                ev.get("pid") for ev in TRACER.events
                if ev.get("name") == "backend.worker_epoch"
            }
        finally:
            TRACER.disable()
            TRACER.reset()
        assert worker_pids == {WORKER_PID_BASE, WORKER_PID_BASE + 1}

    def test_top_dashboard_shows_stable_worker_rows(self):
        """`repro top` groups a pool-backend metrics snapshot into one
        row per *stable* pool worker id, in numeric order."""
        from repro.obs.metrics import METRICS
        from repro.obs.top import (payload_from_registry, render_dashboard,
                                   worker_rows)
        from repro.obs.trace import TRACER

        prog = prepared_counter_program(16)
        TRACER.enable()
        METRICS.reset()
        try:
            prog.execute(workers=2, backend="pool")
            payload = payload_from_registry(METRICS)
        finally:
            TRACER.disable()
            TRACER.reset()
            METRICS.reset()
        rows = worker_rows(payload["metrics"])
        assert [w for w, _ in rows] == ["0", "1"]
        for _, row in rows:
            assert row["epoch.iterations"] > 0
        # And the full dashboard frame renders without blowing up.
        assert "worker" in render_dashboard(payload).lower()

    def test_no_worker_metrics_when_tracing_off(self):
        from repro.obs.metrics import METRICS
        from repro.obs.trace import TRACER

        TRACER.disable()
        METRICS.reset()
        prog = prepared_counter_program(8)
        prog.execute(workers=2, backend="pool")
        assert not any(name.startswith("worker.")
                       for name in METRICS.snapshot())
