"""The figure/table regeneration helpers, exercised on a tiny workload
so the benchmark harness itself is unit-tested."""

import pytest

from repro.bench.figures import (
    ProgramCache,
    figure6_data,
    figure7_data,
    figure8_data,
    figure9_data,
    geomean,
    render_figure6,
    render_figure7,
    render_figure8,
    render_figure9,
    render_table3,
    table3_data,
)
from repro.workloads.base import PaperExpectations, Workload

TINY_SRC = """
int scratch[16];
int out[64];
int main(int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < 16; j++) { scratch[j] = i * j + 1; }
        int acc = 0;
        for (int r = 0; r < 4; r++) {
            for (int j = 0; j < 16; j++) { acc += scratch[j] % 13; }
        }
        out[i] = acc;
    }
    printf("%d %d\\n", out[0], out[7]);
    return 0;
}
"""

TINY = Workload(
    name="tiny",
    suite="test",
    description="tiny privatizable loop",
    source=TINY_SRC,
    train=(24,),
    ref=(24,),
    alt=(12,),
    expectations=PaperExpectations(),
)

WORKERS = (2, 4)


@pytest.fixture(scope="module")
def cache():
    return ProgramCache(use_ref=True)


class TestGeomean:
    def test_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_ignores_nonpositive(self):
        assert geomean([4.0, 0.0]) == pytest.approx(4.0)

    def test_empty(self):
        assert geomean([]) == 0.0


class TestFigureData:
    def test_figure6(self, cache):
        data = figure6_data(cache, [TINY], worker_counts=WORKERS)
        assert set(data) == {"tiny", "geomean"}
        assert set(data["tiny"]) == set(WORKERS)
        assert data["geomean"][2] == pytest.approx(data["tiny"][2])
        text = render_figure6(data)
        assert "tiny" in text and "geomean" in text

    def test_figure7(self, cache):
        data = figure7_data(cache, [TINY], workers=4)
        assert data["tiny"]["privateer"] > 0
        assert "doall_only" in data["tiny"]
        assert "geomean" in data
        assert "tiny" in render_figure7(data)

    def test_figure8(self, cache):
        data = figure8_data(cache, [TINY], worker_counts=WORKERS)
        for workers, bd in data["tiny"].items():
            assert sum(bd.values()) == pytest.approx(1.0, abs=0.02)
        assert "useful" in render_figure8(data)

    def test_figure9(self, cache):
        data = figure9_data(cache, [TINY], rates=(0.0, 0.1), workers=4)
        assert data["tiny"][0.1] < data["tiny"][0.0]
        assert "%" in render_figure9(data)

    def test_table3(self, cache):
        rows = table3_data(cache, [TINY], workers=4)
        row = rows[0]
        assert row["program"] == "tiny"
        assert row["invocations"] == 1
        assert row["checkpoints"] >= 1
        assert row["private_sites"] == 2  # scratch + out
        assert row["extras"] == "-"  # the printf is outside the region
        assert "tiny" in render_table3(rows)


class TestProgramCache:
    def test_prepare_called_once(self, cache):
        a = cache.get(TINY)
        b = cache.get(TINY)
        assert a is b
