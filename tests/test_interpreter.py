"""Interpreter core: dispatch, frames, breakpoints, intrinsics."""

import pytest

from repro.frontend import compile_minic
from repro.interp import (
    BlockBreakpoint,
    GuestExit,
    GuestFault,
    GuestTimeout,
    Interpreter,
)

from .helpers import run_source


class TestExecution:
    def test_return_value(self):
        rv, _, _ = run_source("int main() { return 7; }")
        assert rv == 7

    def test_arguments(self):
        rv, _, _ = run_source("int main(int a, long b) { return a + (int)b; }",
                              args=(3, 4))
        assert rv == 7

    def test_exit_intrinsic(self):
        rv, _, interp = run_source("int main() { exit(3); return 0; }")
        assert rv == 3 and interp.exit_code == 3

    def test_instruction_budget(self):
        mod = compile_minic("int main() { while (1) { } return 0; }")
        interp = Interpreter(mod, max_steps=1000)
        with pytest.raises(GuestTimeout):
            interp.run()

    def test_cycles_accumulate(self):
        _, _, interp = run_source("int main() { return 1 + 2; }")
        assert interp.cycles > 0

    def test_deep_recursion_no_host_overflow(self):
        src = """
        int down(int n) { if (n == 0) { return 0; } return down(n - 1) + 1; }
        int main() { return down(5000); }
        """
        assert run_source(src)[0] == 5000

    def test_stack_slots_freed_on_return(self):
        src = """
        int probe() { int local[64]; local[0] = 1; return local[0]; }
        int main() {
            int acc = 0;
            for (int i = 0; i < 100; i++) { acc += probe(); }
            return acc;
        }
        """
        rv, _, interp = run_source(src)
        assert rv == 100
        stack_objs = [o for o in interp.space.live_objects() if o.kind == "stack"]
        assert len(stack_objs) == 0  # all frames popped


class TestIntrinsics:
    def test_malloc_free_cycle(self):
        src = """
        int main() {
            for (int i = 0; i < 50; i++) {
                long* p = (long*)malloc(8);
                *p = i;
                free(p);
            }
            return 0;
        }
        """
        rv, _, interp = run_source(src)
        heap_objs = [o for o in interp.space.live_objects() if o.kind == "heap"]
        assert rv == 0 and len(heap_objs) == 0

    def test_free_null_is_noop(self):
        assert run_source("int main() { free((int*)0); return 1; }")[0] == 1

    def test_calloc_zeroes(self):
        src = "int main() { int* p = (int*)calloc(4, 4); return p[3]; }"
        assert run_source(src)[0] == 0

    def test_memset_memcpy(self):
        src = """
        int main() {
            char* a = (char*)malloc(8);
            char* b = (char*)malloc(8);
            memset(a, 65, 8);
            memcpy(b, a, 8);
            return b[7];
        }
        """
        assert run_source(src)[0] == 65

    @pytest.mark.parametrize("call,expect", [
        ("sqrt(16.0)", 4.0),
        ("fabs(0.0 - 3.5)", 3.5),
        ("floor(2.9)", 2.0),
        ("pow(2.0, 10.0)", 1024.0),
    ])
    def test_math(self, call, expect):
        src = f"int main() {{ return (int)({call} * 2.0); }}"
        assert run_source(src)[0] == int(expect * 2)

    def test_log_of_negative_is_nan_not_crash(self):
        src = """
        int main() { double x = log(0.0 - 1.0); return x != x; }
        """
        assert run_source(src)[0] == 1

    def test_abs(self):
        assert run_source("int main() { return (int)abs(-9); }")[0] == 9


class TestBreakpoints:
    def test_breakpoint_fires_on_block_entry(self):
        mod = compile_minic("""
        int main() {
            int acc = 0;
            for (int i = 0; i < 3; i++) { acc += i; }
            return acc;
        }
        """)
        interp = Interpreter(mod)
        fn = mod.function_named("main")
        header = fn.block_named("for.cond")
        interp.block_breakpoints.add(header)
        interp.push_function(fn, ())
        hits = 0
        result = None
        while interp.frames:
            try:
                result = interp.step()
            except BlockBreakpoint as bp:
                hits += 1
                assert bp.target is header
                interp.resume_at(bp.frame, bp.target, bp.prev)
        assert result == 3
        assert hits == 4  # preheader entry + 3 back edges

    def test_swap_stack_isolates(self):
        mod = compile_minic("int main() { return 5; }")
        interp = Interpreter(mod)
        interp.push_function(mod.function_named("main"), ())
        saved = interp.swap_stack([])
        assert interp.frames == []
        interp.swap_stack(saved)
        result = None
        while interp.frames:
            result = interp.step()
        assert result == 5


class TestFrameCopy:
    def test_copy_shares_nothing_mutable(self):
        mod = compile_minic("""
        int main() {
            int acc = 1;
            for (int i = 0; i < 4; i++) { acc = acc * 2; }
            return acc;
        }
        """)
        interp = Interpreter(mod)
        frame = interp.push_function(mod.function_named("main"), ())
        for _ in range(3):
            interp.step()
        dup = frame.copy()
        assert dup.regs == frame.regs and dup.regs is not frame.regs
        assert dup.block is frame.block


class TestGlobalRegions:
    def test_global_placed_in_requested_region(self):
        from repro.classify.heaps import HeapKind
        from repro.interp.memory import heap_tag_of

        mod = compile_minic("int g; int main() { g = 3; return g; }")
        interp = Interpreter(
            mod, global_regions={"g": HeapKind.PRIVATE.base})
        gv = mod.global_named("g")
        assert heap_tag_of(interp.global_addrs[gv]) == int(HeapKind.PRIVATE)
        assert interp.run() == 3
