"""DOT export of CFGs and dependence graphs."""

import pytest

from repro.analysis import LoopInfo
from repro.frontend import compile_minic
from repro.ir.dot import cfg_to_dot, deps_to_dot

SRC = """
int state;
int out[64];
int main(int n) {
    for (int i = 0; i < n; i++) {
        out[i] = state;
        state = i;
    }
    return 0;
}
"""


class TestCfgDot:
    def test_valid_structure(self):
        mod = compile_minic(SRC)
        dot = cfg_to_dot(mod.function_named("main"))
        assert dot.startswith('digraph "main"')
        assert dot.rstrip().endswith("}")
        assert '"for.cond"' in dot
        assert "->" in dot

    def test_back_edge_annotated(self):
        mod = compile_minic(SRC)
        dot = cfg_to_dot(mod.function_named("main"))
        assert 'label="back"' in dot

    def test_check_blocks_highlighted_after_transform(self):
        from repro.workloads import DIJKSTRA

        prog = DIJKSTRA.prepare_small()
        dot = cfg_to_dot(prog.module.function_named("dequeueQ"))
        assert "fillcolor" in dot  # privacy/separation checks tinted

    def test_without_instructions(self):
        mod = compile_minic(SRC)
        dot = cfg_to_dot(mod.function_named("main"),
                         include_instructions=False)
        assert "store" not in dot

    def test_quotes_escaped(self):
        from repro.ir.dot import _escape

        assert _escape('say "hi"') == 'say \\"hi\\"'
        assert _escape("back\\slash") == "back\\\\slash"


class TestDepsDot:
    def test_flow_edge_rendered(self):
        mod = compile_minic(SRC)
        fn = mod.function_named("main")
        li = LoopInfo(fn)
        loop = li.loop_with_header("for.cond")
        dot = deps_to_dot(mod, loop, li)
        assert 'label="flow"' in dot
        assert "color=red" in dot

    def test_clean_loop_has_no_edges(self):
        mod = compile_minic("""
        int out[64];
        int main(int n) {
            for (int i = 0; i < n; i++) { out[i] = i; }
            return 0;
        }
        """)
        fn = mod.function_named("main")
        li = LoopInfo(fn)
        dot = deps_to_dot(mod, li.loop_with_header("for.cond"), li)
        assert "->" not in dot
