"""Property tests for the serialization seam between backends.

The process backend works only if (a) :class:`EpochFragment` survives a
pickle round-trip bit-for-bit — it is the *only* state shipped from a
forked worker back to the parent — and (b) replaying a fragment's
writes into the parent-side replica shadow via ``mark_old_writes`` is
idempotent and equivalent to the in-process ``reset_after_checkpoint``
path.  Hypothesis generates arbitrary fragments and write patterns so
these invariants hold beyond the shapes the workloads happen to hit.
"""

import pickle

from hypothesis import given, settings, strategies as st

from repro.runtime.fragments import (
    EpochFragment, ReduxElement, WRITE_FREED, WRITE_LOCAL, WRITE_VALUE)
from repro.runtime.shadow import (
    LIVE_IN, OLD_WRITE, READ_LIVE_IN, ShadowHeap, timestamp_for)

offsets = st.integers(min_value=0, max_value=4095)
iterations = st.integers(min_value=0, max_value=10_000)

redux_elements = st.builds(
    ReduxElement,
    addr=st.integers(min_value=0, max_value=2**32 - 1),
    size=st.sampled_from([1, 2, 4, 8]),
    operator=st.sampled_from(["ADD", "FADD", "MUL", "MAX", "MIN", None]),
    is_float=st.booleans(),
    delta=st.one_of(
        st.integers(min_value=-2**63, max_value=2**63 - 1),
        st.floats(allow_nan=False, allow_infinity=False),
    ),
)

writes = st.tuples(
    offsets, iterations,
    st.sampled_from([WRITE_VALUE, WRITE_FREED, WRITE_LOCAL]),
    st.integers(min_value=0, max_value=255),
)

fragments = st.builds(
    EpochFragment,
    wid=st.integers(min_value=0, max_value=63),
    epoch_start=iterations,
    read_live_in=st.sets(offsets, max_size=64),
    writes=st.lists(writes, max_size=64),
    epoch_written=st.sets(offsets, max_size=64),
    redux_elements=st.lists(redux_elements, max_size=16),
    dirty_private_pages=st.integers(min_value=0, max_value=1024),
)


class TestFragmentPickleRoundTrip:
    @given(frag=fragments)
    @settings(max_examples=200, deadline=None)
    def test_round_trip_preserves_every_field(self, frag):
        clone = pickle.loads(pickle.dumps(frag))
        assert clone == frag
        assert clone.write_offsets() == frag.write_offsets()
        # Container identity must not be shared — a worker-side mutation
        # after pickling cannot alias the parent's copy.
        assert clone.read_live_in is not frag.read_live_in
        assert clone.writes is not frag.writes
        assert clone.epoch_written is not frag.epoch_written

    @given(elem=redux_elements)
    @settings(max_examples=200, deadline=None)
    def test_redux_element_round_trip(self, elem):
        clone = pickle.loads(pickle.dumps(elem))
        assert clone == elem
        assert type(clone.delta) is type(elem.delta)

    @given(frag=fragments)
    @settings(max_examples=100, deadline=None)
    def test_highest_protocol_round_trip(self, frag):
        data = pickle.dumps(frag, protocol=pickle.HIGHEST_PROTOCOL)
        assert pickle.loads(data) == frag


# Write patterns as (offset, size, relative-iteration) triples against a
# small heap; sizes stay modest so intervals overlap often.
write_ops = st.lists(
    st.tuples(st.integers(min_value=0, max_value=120),
              st.integers(min_value=1, max_value=8),
              st.integers(min_value=0, max_value=7)),
    min_size=1, max_size=32)


def _apply_writes(shadow, ops, epoch_start):
    for offset, size, rel in sorted(ops, key=lambda op: op[2]):
        ts = timestamp_for(epoch_start + rel, epoch_start)
        shadow.on_write(offset, size, ts, epoch_start + rel)


class TestMarkOldWritesMerge:
    @given(ops=write_ops)
    @settings(max_examples=200, deadline=None)
    def test_idempotent(self, ops):
        """Replaying the same fragment's offsets twice is a no-op: the
        commit path may mark offsets that reset_after_checkpoint already
        demoted, and re-delivery must not change the metadata."""
        shadow = ShadowHeap(128)
        _apply_writes(shadow, ops, epoch_start=0)
        written = shadow.written_offsets()
        shadow.reset_after_checkpoint()
        baseline = bytes(shadow.meta)
        shadow.mark_old_writes(written)
        assert bytes(shadow.meta) == baseline
        shadow.mark_old_writes(written)
        assert bytes(shadow.meta) == baseline

    @given(ops=write_ops)
    @settings(max_examples=200, deadline=None)
    def test_replica_matches_in_process_shadow(self, ops):
        """A fresh replica shadow fed only the fragment's write offsets
        ends bit-identical to the persistent shadow that actually
        executed the writes and checkpointed."""
        live = ShadowHeap(128)
        _apply_writes(live, ops, epoch_start=0)
        frag = EpochFragment(wid=0, epoch_start=0)
        frag.writes = [(b, it, WRITE_VALUE, 0)
                       for b, it in live.write_iterations(0)]
        live.reset_after_checkpoint()

        replica = ShadowHeap(128)
        replica.mark_old_writes(frag.write_offsets())
        assert bytes(replica.meta) == bytes(live.meta)
        assert not live.written and not live.read_live_in

    @given(ops=write_ops, extra=st.sets(
        st.integers(min_value=0, max_value=200), max_size=16))
    @settings(max_examples=100, deadline=None)
    def test_only_marked_offsets_change(self, ops, extra):
        shadow = ShadowHeap(128)
        _apply_writes(shadow, ops, epoch_start=0)
        shadow.reset_after_checkpoint()
        before = bytes(shadow.meta)
        shadow.mark_old_writes(extra)
        for b, code in enumerate(shadow.meta):
            if b in extra:
                assert code == OLD_WRITE
            elif b < len(before):
                assert code == before[b]
            else:  # offsets past the old size grew in as live-in
                assert code == LIVE_IN

    def test_grows_heap_for_out_of_range_offset(self):
        shadow = ShadowHeap(8)
        shadow.mark_old_writes({20})
        assert shadow.size == 21
        assert shadow.meta[20] == OLD_WRITE
        assert all(c == LIVE_IN for c in shadow.meta[8:20])

    @given(ops=write_ops)
    @settings(max_examples=100, deadline=None)
    def test_read_live_in_survives_unrelated_marks(self, ops):
        """Marking committed writes as old-write must not disturb bytes
        another epoch is still tracking as read-live-in."""
        shadow = ShadowHeap(256)
        _apply_writes(shadow, ops, epoch_start=0)
        shadow.reset_after_checkpoint()
        probe = 200  # disjoint from write_ops offsets (max 120 + 8)
        shadow.on_read(probe, 1, timestamp_for(0, 0), 0)
        assert shadow.meta[probe] == READ_LIVE_IN
        marked = {b for b in range(130) if shadow.meta[b] == OLD_WRITE}
        shadow.mark_old_writes(marked)
        assert shadow.meta[probe] == READ_LIVE_IN
        assert shadow.read_live_in_offsets() == {probe}
