"""Property tests for the serialization seam between backends.

The process backend works only if (a) :class:`EpochFragment` survives a
pickle round-trip bit-for-bit — it is the *only* state shipped from a
forked worker back to the parent — and (b) replaying a fragment's
writes into the parent-side replica shadow via ``mark_old_writes`` is
idempotent and equivalent to the in-process ``reset_after_checkpoint``
path.  Hypothesis generates arbitrary fragments and write patterns so
these invariants hold beyond the shapes the workloads happen to hit.

Fragments are format 2 (packed interval runs, see
:mod:`repro.runtime.fragments`): strategies build them through
:meth:`EpochFragment.pack` from per-byte inputs, and the round-trip
tests additionally pin the explicit format-version field and the
pack/iter_writes inverse.
"""

import pickle

from hypothesis import given, settings, strategies as st

from repro.runtime.fragments import (
    EpochFragment, FRAGMENT_FORMAT, ReduxElement,
    WRITE_FREED, WRITE_LOCAL, WRITE_VALUE)
from repro.runtime.shadow import (
    LIVE_IN, OLD_WRITE, READ_LIVE_IN, ShadowHeap, timestamp_for)

offsets = st.integers(min_value=0, max_value=4095)
iterations = st.integers(min_value=0, max_value=10_000)
rel_iters = st.integers(min_value=0, max_value=252)

redux_elements = st.builds(
    ReduxElement,
    addr=st.integers(min_value=0, max_value=2**32 - 1),
    size=st.sampled_from([1, 2, 4, 8]),
    operator=st.sampled_from(["ADD", "FADD", "MUL", "MAX", "MIN", None]),
    is_float=st.booleans(),
    delta=st.one_of(
        st.integers(min_value=-2**63, max_value=2**63 - 1),
        st.floats(allow_nan=False, allow_infinity=False),
    ),
)

# Per-byte write entries for EpochFragment.pack: at most one per offset.
write_entries = st.dictionaries(
    offsets,
    st.tuples(rel_iters,
              st.sampled_from([WRITE_VALUE, WRITE_FREED, WRITE_LOCAL]),
              st.integers(min_value=0, max_value=255)),
    max_size=64)


@st.composite
def fragments(draw):
    epoch_start = draw(iterations)
    entries = draw(write_entries)
    return EpochFragment.pack(
        wid=draw(st.integers(min_value=0, max_value=63)),
        epoch_start=epoch_start,
        read_live_in=draw(st.sets(offsets, max_size=64)),
        writes=[(b, epoch_start + rel, kind, value)
                for b, (rel, kind, value) in entries.items()],
        epoch_written=draw(st.sets(offsets, max_size=64)),
        redux_elements=draw(st.lists(redux_elements, max_size=16)),
        dirty_private_pages=draw(st.integers(min_value=0, max_value=1024)),
    )


class TestFragmentPickleRoundTrip:
    @given(frag=fragments())
    @settings(max_examples=200, deadline=None)
    def test_round_trip_preserves_every_field(self, frag):
        clone = pickle.loads(pickle.dumps(frag))
        assert clone == frag
        assert clone.format == FRAGMENT_FORMAT
        assert clone.write_offsets() == frag.write_offsets()
        assert clone.read_live_in_offsets() == frag.read_live_in_offsets()
        assert clone.epoch_written_offsets() == frag.epoch_written_offsets()
        assert list(clone.iter_writes()) == list(frag.iter_writes())
        # Mutable container identity must not be shared — a worker-side
        # mutation after pickling cannot alias the parent's copy.
        assert clone.redux_elements is not frag.redux_elements

    @given(elem=redux_elements)
    @settings(max_examples=200, deadline=None)
    def test_redux_element_round_trip(self, elem):
        clone = pickle.loads(pickle.dumps(elem))
        assert clone == elem
        assert type(clone.delta) is type(elem.delta)

    @given(frag=fragments())
    @settings(max_examples=100, deadline=None)
    def test_highest_protocol_round_trip(self, frag):
        data = pickle.dumps(frag, protocol=pickle.HIGHEST_PROTOCOL)
        assert pickle.loads(data) == frag


class TestPackedForm:
    @given(entries=write_entries, epoch_start=iterations)
    @settings(max_examples=200, deadline=None)
    def test_pack_iter_writes_inverse(self, entries, epoch_start):
        """pack() then iter_writes() returns exactly the per-byte input,
        sorted by offset — the packed runs lose no information."""
        writes = sorted((b, epoch_start + rel, kind, value)
                        for b, (rel, kind, value) in entries.items())
        frag = EpochFragment.pack(wid=0, epoch_start=epoch_start,
                                  writes=writes)
        assert list(frag.iter_writes()) == writes
        assert frag.write_byte_count() == len(writes)
        for b, iteration, _kind, _value in writes:
            assert frag.iteration_of(b) == iteration

    @given(entries=write_entries, epoch_start=iterations)
    @settings(max_examples=200, deadline=None)
    def test_runs_are_canonical(self, entries, epoch_start):
        """Runs are sorted, non-overlapping, maximal (no two adjacent
        runs share an iteration), and sized to the payload blobs."""
        writes = [(b, epoch_start + rel, kind, value)
                  for b, (rel, kind, value) in entries.items()]
        frag = EpochFragment.pack(wid=0, epoch_start=epoch_start,
                                  writes=writes)
        total = 0
        prev_end = None
        prev_rel = None
        for start, end, rel in frag.write_runs:
            assert start < end
            if prev_end is not None:
                assert start >= prev_end
                if start == prev_end:
                    assert rel != prev_rel  # maximality
            total += end - start
            prev_end, prev_rel = end, rel
        assert total == len(frag.write_kinds) == len(frag.write_values)

    def test_duplicate_offsets_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            EpochFragment.pack(wid=0, epoch_start=0,
                               writes=[(3, 0, WRITE_VALUE, 1),
                                       (3, 1, WRITE_VALUE, 2)])


# Write patterns as (offset, size, relative-iteration) triples against a
# small heap; sizes stay modest so intervals overlap often.
write_ops = st.lists(
    st.tuples(st.integers(min_value=0, max_value=120),
              st.integers(min_value=1, max_value=8),
              st.integers(min_value=0, max_value=7)),
    min_size=1, max_size=32)


def _apply_writes(shadow, ops, epoch_start):
    for offset, size, rel in sorted(ops, key=lambda op: op[2]):
        ts = timestamp_for(epoch_start + rel, epoch_start)
        shadow.on_write(offset, size, ts, epoch_start + rel)


class TestMarkOldWritesMerge:
    @given(ops=write_ops)
    @settings(max_examples=200, deadline=None)
    def test_idempotent(self, ops):
        """Replaying the same fragment's offsets twice is a no-op: the
        commit path may mark offsets that reset_after_checkpoint already
        demoted, and re-delivery must not change the metadata."""
        shadow = ShadowHeap(128)
        _apply_writes(shadow, ops, epoch_start=0)
        written = shadow.written_offsets()
        shadow.reset_after_checkpoint()
        baseline = bytes(shadow.meta)
        shadow.mark_old_writes(written)
        assert bytes(shadow.meta) == baseline
        shadow.mark_old_writes(written)
        assert bytes(shadow.meta) == baseline

    @given(ops=write_ops)
    @settings(max_examples=200, deadline=None)
    def test_replica_matches_in_process_shadow(self, ops):
        """A fresh replica shadow fed only the fragment's write offsets
        ends bit-identical to the persistent shadow that actually
        executed the writes and checkpointed."""
        live = ShadowHeap(128)
        _apply_writes(live, ops, epoch_start=0)
        frag = EpochFragment.pack(
            wid=0, epoch_start=0,
            writes=[(b, it, WRITE_VALUE, 0)
                    for b, it in live.write_iterations(0)])
        live.reset_after_checkpoint()

        replica = ShadowHeap(128)
        replica.mark_old_writes(frag.write_offsets())
        assert bytes(replica.meta) == bytes(live.meta)
        assert not live.written and not live.read_live_in

    @given(ops=write_ops)
    @settings(max_examples=200, deadline=None)
    def test_replica_run_path_matches_offset_path(self, ops):
        """mark_old_write_runs(frag.write_spans()) — the checkpoint's
        bulk path — is equivalent to per-offset mark_old_writes."""
        live = ShadowHeap(128)
        _apply_writes(live, ops, epoch_start=0)
        frag = EpochFragment.pack(
            wid=0, epoch_start=0,
            writes=[(b, it, WRITE_VALUE, 0)
                    for b, it in live.write_iterations(0)])
        by_offset = ShadowHeap(128)
        by_offset.mark_old_writes(frag.write_offsets())
        by_runs = ShadowHeap(128)
        by_runs.mark_old_write_runs(frag.write_spans())
        assert bytes(by_runs.meta) == bytes(by_offset.meta)

    @given(ops=write_ops, extra=st.sets(
        st.integers(min_value=0, max_value=200), max_size=16))
    @settings(max_examples=100, deadline=None)
    def test_only_marked_offsets_change(self, ops, extra):
        shadow = ShadowHeap(128)
        _apply_writes(shadow, ops, epoch_start=0)
        shadow.reset_after_checkpoint()
        before = bytes(shadow.meta)
        shadow.mark_old_writes(extra)
        for b, code in enumerate(shadow.meta):
            if b in extra:
                assert code == OLD_WRITE
            elif b < len(before):
                assert code == before[b]
            else:  # offsets past the old size grew in as live-in
                assert code == LIVE_IN

    def test_grows_heap_for_out_of_range_offset(self):
        shadow = ShadowHeap(8)
        shadow.mark_old_writes({20})
        assert shadow.size == 21
        assert shadow.meta[20] == OLD_WRITE
        assert all(c == LIVE_IN for c in shadow.meta[8:20])

    @given(ops=write_ops)
    @settings(max_examples=100, deadline=None)
    def test_read_live_in_survives_unrelated_marks(self, ops):
        """Marking committed writes as old-write must not disturb bytes
        another epoch is still tracking as read-live-in."""
        shadow = ShadowHeap(256)
        _apply_writes(shadow, ops, epoch_start=0)
        shadow.reset_after_checkpoint()
        probe = 200  # disjoint from write_ops offsets (max 120 + 8)
        shadow.on_read(probe, 1, timestamp_for(0, 0), 0)
        assert shadow.meta[probe] == READ_LIVE_IN
        marked = {b for b in range(130) if shadow.meta[b] == OLD_WRITE}
        shadow.mark_old_writes(marked)
        assert shadow.meta[probe] == READ_LIVE_IN
        assert shadow.read_live_in_offsets() == {probe}
